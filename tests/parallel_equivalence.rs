//! The parallel executor's core guarantee: `run_jobs(n)` produces a
//! byte-identical exported dataset for every worker count, at every seed.
//!
//! Work units derive their RNG streams from `(campaign_seed, unit key)`
//! and shards merge in canonical unit order, so thread count and
//! completion order must not leak into the output. These tests prove it
//! on the exported JSON — the strongest equality the dataset has.

use wheels_campaign::{Campaign, CampaignConfig, FaultProfile, UnitStatus};
use wheels_xcal::export::to_json;

/// A miniature campaign exercising every unit kind: drive cycles,
/// static city baselines, and passive loggers.
fn mini(seed: u64) -> Campaign {
    mini_faulted(seed, FaultProfile::None)
}

/// [`mini`] under an apparatus fault profile.
fn mini_faulted(seed: u64, profile: FaultProfile) -> Campaign {
    let mut cfg = CampaignConfig::quick_network_only(seed);
    cfg.scale = 0.004;
    cfg.passive_tick_s = 120.0;
    cfg.fault_profile = profile;
    Campaign::new(cfg)
}

#[test]
fn sequential_equals_parallel_at_every_worker_count() {
    for seed in [11, 42] {
        let campaign = mini(seed);
        let baseline = to_json(&campaign.run()).expect("export");
        assert!(!baseline.is_empty());
        for jobs in [1, 2, 4] {
            let parallel = to_json(&campaign.run_jobs(jobs)).expect("export");
            assert_eq!(
                baseline, parallel,
                "seed {seed}: jobs={jobs} diverged from sequential run"
            );
        }
    }
}

#[test]
fn parallel_covers_every_unit_kind() {
    let campaign = mini(11);
    let db = campaign.run_jobs(4);
    assert!(db.records.iter().any(|r| !r.is_static), "no drive records");
    assert!(db.records.iter().any(|r| r.is_static), "no static records");
    assert_eq!(db.passive.len(), 3, "one passive log per operator");
}

#[test]
fn merged_ids_are_strictly_increasing_and_time_sorted() {
    let db = mini(42).run_jobs(2);
    for (i, r) in db.records.iter().enumerate() {
        assert_eq!(r.id, i as u32, "ids are 0..n in final order");
    }
    for pair in db.records.windows(2) {
        assert!(
            pair[0].start_s <= pair[1].start_s,
            "records sorted by start time"
        );
    }
}

#[test]
fn oversubscribed_workers_are_harmless() {
    // More workers than units: extra workers find the queue drained.
    let campaign = mini(42);
    let a = to_json(&campaign.run_jobs(64)).expect("export");
    let b = to_json(&campaign.run()).expect("export");
    assert_eq!(a, b);
}

#[test]
fn fault_injected_runs_are_byte_identical_at_every_worker_count() {
    // The determinism guarantee must survive injection: faults are keyed
    // by (seed, unit, attempt), never by worker or completion order, so
    // the export AND the integrity report match byte for byte.
    for profile in [FaultProfile::Paper, FaultProfile::Harsh] {
        for seed in [11, 42] {
            let campaign = mini_faulted(seed, profile);
            let base = campaign.run_supervised().expect("tolerant by default");
            let base_json = to_json(&base.db).expect("export");
            let base_report =
                serde_json::to_string_pretty(&base.integrity).expect("report export");
            for jobs in [2, 4, 64] {
                let par = campaign.run_supervised_jobs(jobs).expect("tolerant");
                assert_eq!(
                    base_json,
                    to_json(&par.db).expect("export"),
                    "{} seed {seed}: jobs={jobs} dataset diverged",
                    profile.label()
                );
                assert_eq!(
                    base_report,
                    serde_json::to_string_pretty(&par.integrity).expect("report export"),
                    "{} seed {seed}: jobs={jobs} integrity report diverged",
                    profile.label()
                );
            }
        }
    }
}

#[test]
fn harsh_profile_degrades_but_completes() {
    for seed in [11, 42] {
        let outcome = mini_faulted(seed, FaultProfile::Harsh)
            .run_supervised()
            .expect("tolerant by default");
        let hit = outcome
            .integrity
            .units
            .iter()
            .filter(|u| u.status != UnitStatus::Ok)
            .count();
        assert!(hit > 0, "seed {seed}: harsh profile left every unit clean");
        assert!(
            !outcome.db.records.is_empty(),
            "seed {seed}: campaign produced no data at all"
        );
    }
}

#[test]
fn fault_profiles_change_the_dataset_none_does_not() {
    let seed = 42;
    let clean = to_json(&mini(seed).run()).expect("export");
    let clean_supervised = {
        let outcome = mini(seed).run_supervised().expect("no faults");
        to_json(&outcome.db).expect("export")
    };
    assert_eq!(clean, clean_supervised, "fault machinery must be a no-op when off");
    let harsh = {
        let outcome = mini_faulted(seed, FaultProfile::Harsh)
            .run_supervised()
            .expect("tolerant");
        to_json(&outcome.db).expect("export")
    };
    assert_ne!(clean, harsh, "harsh faults should visibly cost data");
}
