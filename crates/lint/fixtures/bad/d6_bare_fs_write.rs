// D6: bare output writes — a crash between create and the final flush
// leaves a torn file under its final name.

use std::fs;
use std::fs::File;
use std::io::Write;

pub fn export_json(path: &str, json: &str) {
    fs::write(path, json).expect("write export");
}

pub fn export_report(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(bytes)
}
