//! mmWave beamforming profiles and the Verizon RSRP paradox.
//!
//! §5.5 (RSRP discussion): *"the RSRP for 5G mmWave ... is low for most
//! samples in the case of Verizon (-80 to -110 dBm) ... but high in the case
//! of AT&T (-70 to -90 dBm). The reason ... lies in the different beamwidths
//! of the phased arrays used by the two operators. In most of the cities,
//! Verizon uses a smaller number of wider beams compared to AT&T, which
//! result in lower gain, and hence, lower RSRP."*
//!
//! A phased array's boresight gain scales inversely with beam solid angle:
//! halving the beamwidth buys ~3 dB. We model a profile by its number of
//! beams covering a 120° sector; the gain difference between profiles is
//! what shifts the logged RSRP without shifting capacity much (capacity is
//! limited by bandwidth and load, not the last few dB of SNR at short
//! mmWave ranges) — reproducing Verizon's near-zero DL RSRP–throughput
//! correlation in Table 2.

/// A mmWave beam configuration for one operator.
#[derive(Debug, Clone, Copy)]
pub struct BeamProfile {
    /// Number of beams covering a 120° sector.
    pub beams_per_sector: u32,
    /// Peak boresight gain of each beam, dBi.
    pub boresight_gain_dbi: f64,
}

impl BeamProfile {
    /// A wide-beam profile (few beams, lower gain) — Verizon-like.
    pub fn wide() -> Self {
        BeamProfile {
            beams_per_sector: 8,
            boresight_gain_dbi: 21.0,
        }
    }

    /// A narrow-beam profile (many beams, higher gain) — AT&T-like.
    pub fn narrow() -> Self {
        BeamProfile {
            beams_per_sector: 32,
            boresight_gain_dbi: 27.0,
        }
    }

    /// Beamwidth in degrees (sector split evenly among beams).
    pub fn beamwidth_deg(&self) -> f64 {
        120.0 / self.beams_per_sector as f64
    }

    /// Effective beam gain towards a UE whose angular offset from the best
    /// beam's boresight is `offset_frac` of a half-beamwidth (0 = centered,
    /// 1 = at the crossover to the next beam). Parabolic main-lobe rolloff
    /// with 3 dB at the crossover, the standard approximation.
    pub fn gain_dbi(&self, offset_frac: f64) -> f64 {
        let x = offset_frac.clamp(0.0, 1.0);
        self.boresight_gain_dbi - 3.0 * x * x
    }

    /// Average gain over a beam (UE uniformly distributed in angle): the
    /// value that matters for the RSRP distribution a drive test logs.
    pub fn mean_gain_dbi(&self) -> f64 {
        // Integral of (G0 - 3x^2) over x in [0,1] = G0 - 1.
        self.boresight_gain_dbi - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_beams_have_higher_gain() {
        assert!(BeamProfile::narrow().mean_gain_dbi() > BeamProfile::wide().mean_gain_dbi() + 4.0);
    }

    #[test]
    fn narrow_beams_are_narrower() {
        assert!(BeamProfile::narrow().beamwidth_deg() < BeamProfile::wide().beamwidth_deg());
    }

    #[test]
    fn gain_max_at_boresight() {
        let p = BeamProfile::wide();
        assert!(p.gain_dbi(0.0) > p.gain_dbi(0.5));
        assert!(p.gain_dbi(0.5) > p.gain_dbi(1.0));
    }

    #[test]
    fn crossover_loss_is_3db() {
        let p = BeamProfile::narrow();
        assert!((p.gain_dbi(0.0) - p.gain_dbi(1.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn paradox_magnitude_about_6_db() {
        // The paper reports Verizon ~-80..-110 vs AT&T ~-70..-90: a ~10 dB
        // shift. Beam gain supplies ~6 dB of it (the rest comes from site
        // placement differences in `wheels-ran`).
        let d = BeamProfile::narrow().mean_gain_dbi() - BeamProfile::wide().mean_gain_dbi();
        assert!((5.0..8.0).contains(&d), "{d}");
    }
}
