//! 360° video streaming (§7.2, §D).
//!
//! The paper streams YouTube 360° videos through a Puffer server with the
//! ABR replaced by BBA (buffer-based adaptation), 2 s chunks encoded at
//! {100, 50, 10, 5} Mbps, 3-minute sessions, and scores QoE with the
//! control-theoretic formula of Yin et al.:
//! `QoE_k = B_k − λ·|B_k − B_{k−1}| − μ·T_k` with λ = 1, μ = 100.

pub mod bba;
pub mod qoe;

use crate::AppLink;
use bba::Bba;
use qoe::{session_qoe, ChunkScore};

/// Encoding ladder, Mbps, ascending (§D.1).
pub const BITRATES_MBPS: [f64; 4] = [5.0, 10.0, 50.0, 100.0];
/// Chunk duration, seconds.
pub const CHUNK_S: f64 = 2.0;
/// Session duration, seconds (§D.1: each playback session is 3 minutes).
pub const SESSION_S: f64 = 180.0;
/// Playback buffer capacity, seconds (Puffer-like client buffer; a deeper
/// buffer would ride out the fades that cause the paper's heavy
/// rebuffering).
pub const BUFFER_CAP_S: f64 = 15.0;

/// Summary of one streaming session.
#[derive(Debug, Clone)]
pub struct VideoSummary {
    /// Average per-chunk QoE (Yin et al.).
    pub qoe: f64,
    /// Average chunk bitrate, Mbps.
    pub avg_bitrate_mbps: f64,
    /// Total rebuffering time, seconds.
    pub rebuffer_s: f64,
    /// Rebuffer time as a fraction of the session.
    pub rebuffer_frac: f64,
    /// Number of chunks downloaded.
    pub chunks: usize,
    /// Number of bitrate switches.
    pub switches: usize,
    /// Per-chunk scores (for deeper analysis).
    pub per_chunk: Vec<ChunkScore>,
}

/// A 360° streaming session driven by BBA.
#[derive(Debug, Clone, Copy)]
pub struct VideoSession {
    /// Session length, seconds.
    pub duration_s: f64,
}

impl Default for VideoSession {
    fn default() -> Self {
        VideoSession {
            duration_s: SESSION_S,
        }
    }
}

impl VideoSession {
    /// Play the session starting at absolute time `t0_s`.
    pub fn run(&self, t0_s: f64, link: &mut dyn AppLink) -> VideoSummary {
        let bba = Bba::default();
        let mut buffer_s = 0.0_f64;
        let mut t = t0_s;
        let end = t0_s + self.duration_s;
        let mut rebuffer_s = 0.0_f64;
        let mut scores: Vec<ChunkScore> = Vec::new();
        let mut last_rate: Option<f64> = None;
        let step = 0.1;
        while t < end {
            // If the buffer is full, idle until there is room.
            if buffer_s >= BUFFER_CAP_S - CHUNK_S {
                buffer_s -= step;
                t += step;
                continue;
            }
            let rate = bba.pick(buffer_s, &BITRATES_MBPS, last_rate);
            let chunk_bits = rate * 1e6 * CHUNK_S;
            // Download the chunk over the varying link; playback drains the
            // buffer meanwhile, stalling at zero. Each chunk is an HTTP
            // request over a (possibly idle) TCP connection: it pays one
            // RTT up front and ramps back to full rate over ~1 s (cwnd
            // decays during idle, RFC 2861) — at the 100 Mbps rung this
            // matters as much as raw capacity.
            let mut got_bits = 0.0;
            let mut chunk_rebuffer = 0.0;
            let download_start = t;
            let mut request_paid = false;
            while got_bits < chunk_bits && t < end {
                let obs = link.sample(t);
                if !request_paid {
                    // Request RTT: playback keeps draining, nothing arrives.
                    let wait = (obs.rtt_ms / 1_000.0).min(1.0);
                    if buffer_s > 0.0 {
                        buffer_s = (buffer_s - wait).max(0.0);
                    } else {
                        chunk_rebuffer += wait;
                    }
                    t += wait;
                    request_paid = true;
                    continue;
                }
                let ramp = ((t - download_start) / 1.0).clamp(0.25, 1.0);
                let rate_now = if obs.in_handover {
                    0.0
                } else {
                    obs.dl_mbps * 1e6 * ramp
                };
                got_bits += rate_now * step;
                if buffer_s > 0.0 {
                    buffer_s = (buffer_s - step).max(0.0);
                } else {
                    chunk_rebuffer += step;
                }
                t += step;
            }
            if got_bits >= chunk_bits {
                buffer_s = (buffer_s + CHUNK_S).min(BUFFER_CAP_S);
                scores.push(ChunkScore {
                    bitrate_mbps: rate,
                    prev_bitrate_mbps: last_rate,
                    rebuffer_s: chunk_rebuffer,
                });
                last_rate = Some(rate);
            } else if chunk_rebuffer > 0.0 {
                // Session ended mid-download while stalled: account the
                // stall against the last chunk.
                scores.push(ChunkScore {
                    bitrate_mbps: rate,
                    prev_bitrate_mbps: last_rate,
                    rebuffer_s: chunk_rebuffer,
                });
            }
            rebuffer_s += chunk_rebuffer;
        }
        let chunks = scores.len();
        let avg_bitrate = if chunks == 0 {
            0.0
        } else {
            scores.iter().map(|s| s.bitrate_mbps).sum::<f64>() / chunks as f64
        };
        let switches = scores
            .iter()
            .filter(|s| s.prev_bitrate_mbps.is_some_and(|p| p != s.bitrate_mbps))
            .count();
        VideoSummary {
            qoe: session_qoe(&scores),
            avg_bitrate_mbps: avg_bitrate,
            rebuffer_s,
            rebuffer_frac: rebuffer_s / self.duration_s,
            chunks,
            switches,
            per_chunk: scores,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantLink, LinkObs};

    #[test]
    fn fat_link_reaches_max_qoe() {
        // §7.2: "the theoretical best value is 100 assuming no stalls and
        // no bitrate switch". A 600 Mbps link should get very close (the
        // BBA ramp-up from an empty buffer costs a few low-rate chunks).
        let s = VideoSession::default().run(0.0, &mut ConstantLink::good());
        assert!(s.qoe > 80.0, "qoe {}", s.qoe);
        assert!(s.avg_bitrate_mbps > 85.0, "{}", s.avg_bitrate_mbps);
        assert!(s.rebuffer_frac < 0.02, "{}", s.rebuffer_frac);
    }

    #[test]
    fn starved_link_goes_negative() {
        // Below the lowest rung (5 Mbps) the session mostly rebuffers; the
        // μ=100 penalty drives QoE deeply negative (paper: 40 % of driving
        // runs have negative QoE).
        let mut link = ConstantLink {
            obs: LinkObs {
                dl_mbps: 2.0,
                ul_mbps: 1.0,
                rtt_ms: 80.0,
                in_handover: false,
            },
        };
        let s = VideoSession::default().run(0.0, &mut link);
        assert!(s.qoe < 0.0, "qoe {}", s.qoe);
        assert!(s.rebuffer_frac > 0.3, "{}", s.rebuffer_frac);
    }

    #[test]
    fn mid_link_picks_mid_rate() {
        let mut link = ConstantLink {
            obs: LinkObs {
                dl_mbps: 30.0,
                ul_mbps: 5.0,
                rtt_ms: 50.0,
                in_handover: false,
            },
        };
        let s = VideoSession::default().run(0.0, &mut link);
        // Sustainable rate is 30 Mbps: should settle on the 10 Mbps rung
        // mostly (50 drains the buffer).
        assert!((8.0..45.0).contains(&s.avg_bitrate_mbps), "{}", s.avg_bitrate_mbps);
        assert!(s.qoe > 0.0, "{}", s.qoe);
    }

    #[test]
    fn rebuffer_fraction_can_reach_extremes() {
        // Paper: rebuffering up to 87 % of playback time.
        let mut link = ConstantLink {
            obs: LinkObs {
                dl_mbps: 0.5,
                ul_mbps: 0.5,
                rtt_ms: 100.0,
                in_handover: false,
            },
        };
        let s = VideoSession::default().run(0.0, &mut link);
        assert!(s.rebuffer_frac > 0.7, "{}", s.rebuffer_frac);
    }

    #[test]
    fn buffer_never_needed_after_warmup_on_good_link() {
        let s = VideoSession::default().run(0.0, &mut ConstantLink::good());
        // No chunk after the first few should see rebuffering.
        for c in s.per_chunk.iter().skip(3) {
            assert_eq!(c.rebuffer_s, 0.0);
        }
    }
}
