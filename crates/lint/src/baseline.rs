//! Finding fingerprints and the ratchet baseline.
//!
//! The baseline (`lint-baseline.json`, checked in at the repo root)
//! records the pre-existing debt the linter knows about — today that is
//! the D7 panic-surface findings that predate the rule. The contract is
//! a one-way ratchet:
//!
//! * a finding whose fingerprint is in the baseline is reported as
//!   `baselined` and does not fail CI;
//! * a finding NOT in the baseline fails CI (new debt is rejected);
//! * a baseline entry that no longer fires also fails CI — the fix must
//!   delete the entry, so the file only ever shrinks.
//!
//! Fingerprints must survive unrelated edits (line insertions above a
//! site must not invalidate the whole file's entries), so they hash the
//! rule id, the workspace-relative path, the enclosing function's
//! qualified name, the stripped source line text, and an ordinal among
//! identical tuples — but never the line number itself.
//!
//! The lint crate is dependency-free, so this module carries its own
//! FNV-1a and a small recursive-descent JSON reader for the baseline
//! file (the same dialect `render` writes; unknown fields are ignored
//! so the format can grow).

use std::fmt::Write as _;

/// 64-bit FNV-1a (same parameters as the checkpoint digest).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable fingerprint for a finding: 16 lowercase hex chars.
///
/// `ordinal` disambiguates repeated identical sites (two `.unwrap()` on
/// the same trimmed line text in the same function) by their source
/// order, so one fix invalidates exactly one entry.
pub fn fingerprint(rule: &str, rel: &str, context: &str, snippet: &str, ordinal: usize) -> String {
    let mut buf = Vec::with_capacity(rule.len() + rel.len() + context.len() + snippet.len() + 8);
    for part in [rule, rel, context, snippet] {
        buf.extend_from_slice(part.as_bytes());
        buf.push(0x1f); // unit separator: "a"+"bc" != "ab"+"c"
    }
    buf.extend_from_slice(&(ordinal as u64).to_le_bytes());
    format!("{:016x}", fnv1a64(&buf))
}

/// One baseline entry. `rule` and `file` are denormalized copies kept
/// for human review of the baseline file; only `fingerprint` is matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub fingerprint: String,
    pub rule: String,
    pub file: String,
    pub message: String,
}

/// Parse a baseline file. Errors carry enough context to fix the file.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let root = parse_json(text)?;
    let entries = root
        .get("entries")
        .ok_or_else(|| "baseline: missing `entries` array".to_string())?;
    let Json::Arr(items) = entries else {
        return Err("baseline: `entries` is not an array".to_string());
    };
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let str_field = |name: &str| -> Result<String, String> {
            match item.get(name) {
                Some(Json::Str(s)) => Ok(s.clone()),
                Some(_) => Err(format!("baseline entry {i}: `{name}` is not a string")),
                None => Err(format!("baseline entry {i}: missing `{name}`")),
            }
        };
        out.push(BaselineEntry {
            fingerprint: str_field("fingerprint")?,
            rule: str_field("rule")?,
            file: str_field("file")?,
            message: str_field("message").unwrap_or_default(),
        });
    }
    Ok(out)
}

/// Render a baseline file (sorted by file, rule, fingerprint so diffs
/// are stable under re-generation).
pub fn render_baseline(entries: &[BaselineEntry]) -> String {
    let mut sorted: Vec<&BaselineEntry> = entries.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.file, &a.rule, &a.fingerprint).cmp(&(&b.file, &b.rule, &b.fingerprint))
    });
    let mut out = String::new();
    out.push_str("{\n  \"comment\": \"wheels-lint ratchet baseline: entries may only be removed. Regenerate with --write-baseline after paying down debt.\",\n  \"entries\": [\n");
    for (i, e) in sorted.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"fingerprint\": \"{}\", \"rule\": \"{}\", \"file\": \"{}\", \"message\": \"{}\"}}",
            escape(&e.fingerprint),
            escape(&e.rule),
            escape(&e.file),
            escape(&e.message)
        );
        out.push_str(if i + 1 < sorted.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON value for reading the baseline file.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parse a JSON document. Total: returns `Err` on malformed input,
/// never panics.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing characters at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_ascii_whitespace()) {
        *pos += 1;
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some('{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(chars, pos);
                let key = match parse_value(chars, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key at offset {pos} is not a string", pos = *pos)),
                };
                skip_ws(chars, pos);
                if chars.get(*pos) != Some(&':') {
                    return Err(format!("expected `:` at offset {}", *pos));
                }
                *pos += 1;
                let value = parse_value(chars, pos)?;
                fields.push((key, value));
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {}", *pos)),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {}", *pos)),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match chars.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some('"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some('\\') => {
                        *pos += 1;
                        match chars.get(*pos) {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('/') => s.push('/'),
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('r') => s.push('\r'),
                            Some('b') => s.push('\u{8}'),
                            Some('f') => s.push('\u{c}'),
                            Some('u') => {
                                let mut code = 0u32;
                                for k in 1..=4 {
                                    let d = chars
                                        .get(*pos + k)
                                        .and_then(|c| c.to_digit(16))
                                        .ok_or_else(|| "bad \\u escape".to_string())?;
                                    code = code * 16 + d;
                                }
                                *pos += 4;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            _ => return Err("bad escape".to_string()),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        s.push(c);
                        *pos += 1;
                    }
                }
            }
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            if chars.get(*pos) == Some(&'-') {
                *pos += 1;
            }
            while chars
                .get(*pos)
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
            {
                *pos += 1;
            }
            let text: String = chars[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number `{text}`"))
        }
        Some(_) => {
            for (lit, val) in [
                ("true", Json::Bool(true)),
                ("false", Json::Bool(false)),
                ("null", Json::Null),
            ] {
                let lit_chars: Vec<char> = lit.chars().collect();
                if chars[*pos..].starts_with(&lit_chars) {
                    *pos += lit_chars.len();
                    return Ok(val);
                }
            }
            Err(format!("unexpected character at offset {}", *pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let a = fingerprint("D7", "crates/x/src/a.rs", "T::f", ".unwrap()", 0);
        let b = fingerprint("D7", "crates/x/src/a.rs", "T::f", ".unwrap()", 0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert_ne!(a, fingerprint("D7", "crates/x/src/a.rs", "T::f", ".unwrap()", 1));
        assert_ne!(a, fingerprint("D8", "crates/x/src/a.rs", "T::f", ".unwrap()", 0));
        // Field boundaries matter: shifting a char between fields must
        // change the hash.
        assert_ne!(
            fingerprint("D7", "ab", "c", "s", 0),
            fingerprint("D7", "a", "bc", "s", 0)
        );
    }

    #[test]
    fn baseline_roundtrip() {
        let entries = vec![
            BaselineEntry {
                fingerprint: "00ff00ff00ff00ff".to_string(),
                rule: "D7".to_string(),
                file: "crates/campaign/src/runner.rs".to_string(),
                message: "`.expect(` outside test code".to_string(),
            },
            BaselineEntry {
                fingerprint: "1234567812345678".to_string(),
                rule: "D7".to_string(),
                file: "crates/apps/src/video/bba.rs".to_string(),
                message: "slice index".to_string(),
            },
        ];
        let text = render_baseline(&entries);
        let back = parse_baseline(&text).unwrap();
        assert_eq!(back.len(), 2);
        // Rendering sorts by (file, rule, fingerprint).
        assert_eq!(back[0].file, "crates/apps/src/video/bba.rs");
        assert!(back.iter().any(|e| e.fingerprint == "00ff00ff00ff00ff"));
    }

    #[test]
    fn empty_baseline_roundtrip() {
        let text = render_baseline(&[]);
        assert!(parse_baseline(&text).unwrap().is_empty());
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let v = parse_json(r#"{"a": [1, {"b": "x\"y"}, true, null], "n": -2.5e1}"#).unwrap();
        let arr = v.get("a").unwrap();
        let Json::Arr(items) = arr else { panic!("not arr") };
        assert_eq!(items[0], Json::Num(1.0));
        assert_eq!(items[1].get("b"), Some(&Json::Str("x\"y".to_string())));
        assert_eq!(v.get("n"), Some(&Json::Num(-25.0)));
    }

    #[test]
    fn json_parser_rejects_malformed_input_without_panic() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"open", "{\"a\":}", "1 2"] {
            assert!(parse_json(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn baseline_errors_name_the_problem() {
        assert!(parse_baseline("{}").unwrap_err().contains("entries"));
        let e = parse_baseline(r#"{"entries": [{"rule": "D7"}]}"#).unwrap_err();
        assert!(e.contains("fingerprint"));
    }
}
