//! # wheels-campaign
//!
//! The measurement campaign orchestrator: reproduces the paper's §3
//! methodology end-to-end inside the simulation.
//!
//! * Three "test phones" (one per operator) run the paper's test suite in
//!   round-robin while the vehicle drives LA → Boston: 30 s nuttcp DL,
//!   30 s nuttcp UL, 20 s ICMP RTT, then the four killer apps.
//! * Three "handover-logger" phones passively ping all day (the
//!   pessimistic coverage view of Fig. 1).
//! * Static baselines run in the 10 major cities facing the best
//!   high-speed-5G cell the operator has there (Fig. 3a), skipping
//!   operator-city combos that never elevate the UE (as the paper did).
//! * Everything is logged through `wheels-xcal` (including the
//!   local-vs-EDT timestamp mess) and assembled into a
//!   [`wheels_xcal::ConsolidatedDb`].
//!
//! [`CampaignConfig::scale`] subsamples round-robin cycles so unit tests
//! and examples can run a miniature campaign in seconds while benches run
//! the full-scale one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod driver;
pub mod executor;
pub mod integrity;
pub mod ookla;
pub mod runner;
pub mod scenario;
pub mod static_tests;
pub mod stats;

pub use checkpoint::{
    atomic_write, atomic_write_with, write_all_chunked, CheckpointKey, CheckpointWriter,
    LoadedCheckpoints,
};
pub use config::CampaignConfig;
pub use executor::{merge_shard_slots, merge_shards, ExecInterrupt, Shard, WorkUnit};
pub use integrity::{IntegrityReport, ResumeReport, UnitError, UnitReport, UnitStatus};
pub use runner::{
    Campaign, CampaignAborted, CampaignError, CampaignOutcome, CheckpointOptions, FleetSummary,
};
pub use scenario::{LoadScaleSpec, ScenarioSpec, ScenarioWorld, SubscriberSpec};
pub use wheels_fleet::FleetUnitSketch;
pub use stats::Table1;
pub use wheels_netsim::faults::{FaultProfile, ProcessKill};
