//! One bench per table/figure: measures the analysis pass that
//! regenerates the artifact from the consolidated database, and prints the
//! artifact once so the bench log doubles as a reduced-scale report.
//!
//! (The full-scale artifacts come from `--bin repro`; see EXPERIMENTS.md.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;

use wheels_analysis::figures as figs;
use wheels_analysis::AnalysisIndex;
use wheels_bench::{run_campaign, ReproScale};
use wheels_campaign::stats::Table1;
use wheels_xcal::database::ConsolidatedDb;

fn db() -> &'static (wheels_campaign::Campaign, ConsolidatedDb) {
    static DB: OnceLock<(wheels_campaign::Campaign, ConsolidatedDb)> = OnceLock::new();
    DB.get_or_init(|| run_campaign(ReproScale::Smoke, 2026))
}

fn ix() -> &'static AnalysisIndex<'static> {
    static IX: OnceLock<AnalysisIndex<'static>> = OnceLock::new();
    IX.get_or_init(|| AnalysisIndex::build(&db().1))
}

macro_rules! fig_bench {
    ($fn_name:ident, $bench_name:expr, $module:ident) => {
        fn $fn_name(c: &mut Criterion) {
            let index = ix();
            // Print the reduced-scale artifact once for the bench log.
            eprintln!("{}", figs::$module::compute(index).render());
            c.bench_function($bench_name, |b| {
                b.iter(|| black_box(figs::$module::compute(index)))
            });
        }
    };
}

fn bench_campaign(c: &mut Criterion) {
    // The campaign run itself, at smoke scale (one sample per iteration is
    // already seconds of simulated tests).
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.bench_function("run_smoke_scale", |b| {
        b.iter(|| black_box(run_campaign(ReproScale::Smoke, 7)))
    });
    g.finish();
}

fn bench_table1(c: &mut Criterion) {
    let (campaign, database) = db();
    eprintln!("{}", Table1::compute(database, campaign.plan().route()).render());
    c.bench_function("table1", |b| {
        b.iter(|| black_box(Table1::compute(database, campaign.plan().route())))
    });
}

fig_bench!(bench_fig1, "fig1_coverage_views", fig01_coverage_views);
fig_bench!(bench_fig2, "fig2_coverage", fig02_coverage);
fig_bench!(bench_fig3, "fig3_static_vs_driving", fig03_static_driving);
fig_bench!(bench_fig4, "fig4_tech_perf", fig04_tech_perf);
fig_bench!(bench_fig5, "fig5_timezones", fig05_timezones);
fig_bench!(bench_fig6, "fig6_operator_diversity", fig06_operator_diversity);
fig_bench!(bench_fig7, "fig7_speed_tput", fig07_speed_tput);
fig_bench!(bench_fig8, "fig8_speed_rtt", fig08_speed_rtt);
fig_bench!(bench_table2, "table2_correlations", table2_correlations);
fig_bench!(bench_fig9, "fig9_test_stats", fig09_test_stats);
fig_bench!(bench_fig10, "fig10_hs5g", fig10_hs5g);
fig_bench!(bench_table3, "table3_ookla", table3_ookla);
fig_bench!(bench_fig11, "fig11_handovers", fig11_handovers);
fig_bench!(bench_fig12, "fig12_ho_impact", fig12_ho_impact);
fig_bench!(bench_fig13, "fig13_ar", fig13_ar);
fig_bench!(bench_fig14, "fig14_cav", fig14_cav);
fig_bench!(bench_fig15, "fig15_video", fig15_video);
fig_bench!(bench_fig16, "fig16_gaming", fig16_gaming);

criterion_group!(
    benches,
    bench_campaign,
    bench_table1,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_table2,
    bench_fig9,
    bench_fig10,
    bench_table3,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15,
    bench_fig16
);
criterion_main!(benches);
