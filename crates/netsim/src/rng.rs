//! Deterministic per-component RNG stream derivation.
//!
//! The campaign executor splits the 8-day drive into independent work
//! units — `(operator, day)` drive segments, `(operator, site)` static
//! baselines, per-operator passive loggers — that may run on any worker
//! thread in any order. Every random stream a unit consumes is therefore
//! derived *ahead of time* from the campaign seed plus the unit's key via
//! a SplitMix64 absorb chain, never from shared mutable RNG state. The
//! sequential executor uses the same derivation, which is what makes
//! sequential and parallel runs byte-identical.

use rand::rngs::SmallRng;
use rand::{splitmix64, SeedableRng};

/// Domain tag for the per-`(operator, day)` phone (UE + RTT model).
pub const DOMAIN_PHONE: u64 = 0x5048_4F4E_4531_0001; // "PHONE1"
/// Domain tag for the per-day cycle-skip stream (operator-independent:
/// the three phones share one vehicle and one round-robin schedule).
pub const DOMAIN_CYCLE: u64 = 0x4359_434C_4531_0002; // "CYCLE1"
/// Domain tag for static-baseline phones (`operator`, site, attempt).
pub const DOMAIN_STATIC: u64 = 0x5354_4154_4943_0003; // "STATIC"
/// Domain tag for the per-operator passive handover logger.
pub const DOMAIN_PASSIVE: u64 = 0x5041_5353_4956_0004; // "PASSIV"
/// Domain tag for per-`(unit, attempt)` fault-injection decisions (see
/// [`crate::faults`]).
pub const DOMAIN_FAULT: u64 = 0x4641_554C_5453_0005; // "FAULTS"
/// Domain tag for the per-operator subscriber-fleet attachment process
/// (keyed by operator; per-cell draws are split off inside the RAN).
pub const DOMAIN_FLEET: u64 = 0x464C_4545_5431_0006; // "FLEET1"

/// Derive a stream seed from the campaign seed, a domain tag, and the
/// unit's key words.
///
/// Each input is absorbed through one SplitMix64 step, so every bit of
/// `(campaign_seed, domain, words)` diffuses into the output: perturbing
/// the campaign seed changes every derived stream, and distinct keys give
/// independent streams (collisions are the generic 64-bit birthday bound,
/// far beyond the handful of units a campaign schedules).
pub fn derive_seed(campaign_seed: u64, domain: u64, words: &[u64]) -> u64 {
    let mut state = campaign_seed;
    let mut out = splitmix64(&mut state);
    state = out ^ domain;
    out = splitmix64(&mut state);
    for &w in words {
        state = out ^ w;
        out = splitmix64(&mut state);
    }
    out
}

/// A [`SmallRng`] positioned at the start of the derived stream.
pub fn stream(campaign_seed: u64, domain: u64, words: &[u64]) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(campaign_seed, domain, words))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngCore};

    #[test]
    fn distinct_keys_distinct_streams() {
        let base = derive_seed(42, DOMAIN_PHONE, &[0, 0]);
        assert_ne!(base, derive_seed(42, DOMAIN_PHONE, &[0, 1]));
        assert_ne!(base, derive_seed(42, DOMAIN_PHONE, &[1, 0]));
        assert_ne!(base, derive_seed(42, DOMAIN_CYCLE, &[0, 0]));
        assert_ne!(base, derive_seed(43, DOMAIN_PHONE, &[0, 0]));
    }

    #[test]
    fn derivation_is_pure() {
        assert_eq!(
            derive_seed(7, DOMAIN_STATIC, &[1, 2, 3]),
            derive_seed(7, DOMAIN_STATIC, &[1, 2, 3])
        );
        let mut a = stream(7, DOMAIN_PASSIVE, &[2]);
        let mut b = stream(7, DOMAIN_PASSIVE, &[2]);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn word_count_matters() {
        // [x] and [x, 0] must not collide: the chain absorbs length
        // implicitly because every extra word adds a mixing round.
        let one = derive_seed(9, DOMAIN_PHONE, &[5]);
        let two = derive_seed(9, DOMAIN_PHONE, &[5, 0]);
        assert_ne!(one, two);
        let mut r = stream(9, DOMAIN_PHONE, &[5]);
        assert!((0.0..1.0).contains(&r.gen::<f64>()));
    }
}
