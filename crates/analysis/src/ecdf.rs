//! Empirical CDFs — the paper's figures are almost all CDF plots.

use crate::stats::percentile_sorted;

/// An empirical CDF over f64 samples.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (non-finite values are dropped).
    pub fn new(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|v| v.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        Ecdf { sorted }
    }

    /// Build from a column that is already sorted ascending (e.g. a
    /// pre-sorted [`crate::index::AnalysisIndex`] metric column) — no
    /// re-sort, no copy.
    pub fn from_sorted(sorted: Vec<f64>) -> Self {
        debug_assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]) && sorted.iter().all(|v| v.is_finite()),
            "from_sorted needs finite ascending samples"
        );
        Ecdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn frac_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// Value at percentile `p` (0–100).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_sorted(&self.sorted, p)
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Minimum sample (0 if empty).
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Maximum sample (0 if empty).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// A compact five-number-plus summary: (p10, p25, p50, p75, p90, max).
    pub fn summary(&self) -> [f64; 6] {
        [
            self.percentile(10.0),
            self.percentile(25.0),
            self.percentile(50.0),
            self.percentile(75.0),
            self.percentile(90.0),
            self.max(),
        ]
    }

    /// Evenly spaced (value, cumulative-fraction) points for plotting.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        (0..=n)
            .map(|i| {
                let p = i as f64 / n as f64 * 100.0;
                (self.percentile(p), p / 100.0)
            })
            .collect()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frac_below_basics() {
        let e = Ecdf::new([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.frac_below(0.5), 0.0);
        assert_eq!(e.frac_below(2.0), 0.5);
        assert_eq!(e.frac_below(10.0), 1.0);
    }

    #[test]
    fn percentiles_and_extremes() {
        let e = Ecdf::new((1..=100).map(|i| i as f64));
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 100.0);
        assert!((e.median() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn drops_non_finite() {
        let e = Ecdf::new([1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn points_are_monotone() {
        let e = Ecdf::new([5.0, 1.0, 3.0, 2.0, 4.0]);
        let pts = e.points(10);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn empty_is_safe() {
        let e = Ecdf::new([]);
        assert!(e.is_empty());
        assert_eq!(e.median(), 0.0);
        assert!(e.points(5).is_empty());
    }

    #[test]
    fn summary_ordered() {
        let e = Ecdf::new((0..1000).map(|i| (i as f64).sin() * 50.0 + 50.0));
        let s = e.summary();
        for w in s.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
    }
}
