//! D7 must fire: panic surface inside the campaign/export trees. Every
//! `unwrap`, `expect`, `panic!`, and bare slice index in non-test code
//! here is a worker abort waiting for the first malformed checkpoint —
//! these paths must propagate typed errors instead.

pub struct Frame {
    words: Vec<u64>,
}

pub fn read_word(frame: &Frame, at: usize) -> u64 {
    // Bare indexing: panics on a truncated frame.
    frame.words[at]
}

pub fn first_word(frame: &Frame) -> u64 {
    frame.words.first().copied().unwrap()
}

pub fn header_word(frame: &Frame) -> u64 {
    frame.words.first().copied().expect("frame has a header")
}

pub fn reject(kind: u32) -> ! {
    panic!("unsupported frame kind {kind}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        // unwrap in tests is fine — a failing test *should* abort.
        let f = Frame { words: vec![7] };
        assert_eq!(f.words.first().copied().unwrap(), 7);
    }
}
