//! Campaign configuration.

use wheels_netsim::faults::FaultProfile;

/// Tunable parameters of a campaign run.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed: drives the drive plan, deployments, UEs, loggers.
    pub seed: u64,
    /// Fraction of round-robin cycles executed (1.0 = the full 8-day
    /// campaign; smaller values skip cycles but keep their time slots, so
    /// the surviving tests still span the whole route).
    pub scale: f64,
    /// Run the four killer apps (disable for network-only studies).
    pub run_apps: bool,
    /// Run the static city baselines.
    pub run_static: bool,
    /// Run the passive handover-logger phones.
    pub run_passive: bool,
    /// Passive logger cadence, seconds.
    pub passive_tick_s: f64,
    /// UE link-snapshot cadence during tests, seconds.
    pub snapshot_tick_s: f64,
    /// Idle gap between consecutive tests, seconds.
    pub gap_s: f64,
    /// Apparatus fault injection profile (default
    /// [`FaultProfile::None`]: the machinery is a strict no-op and the
    /// output is bit-identical to a build without it).
    pub fault_profile: FaultProfile,
    /// Supervisor retry budget per work unit: a unit whose attempts all
    /// abort is marked `Lost` after `max_retries + 1` tries.
    pub max_retries: u32,
    /// Panel-total subscriber population override. `None` defers to the
    /// scenario's `subscribers` axis; `Some(0)` forces the fleet off;
    /// `Some(n)` overrides (or enables, with default demand mix) a fleet
    /// of `n` subscribers. `None`/0 is a strict no-op: the run is
    /// byte-identical to a build without the fleet subsystem.
    pub population: Option<u64>,
    /// Abort the whole campaign if any unit ends `Lost` (only honored by
    /// the supervised entry points; `run`/`run_jobs` always tolerate).
    pub fail_fast: bool,
}

impl Default for CampaignConfig {
    /// The full paper-scale configuration at seed 0; the named
    /// constructors are overrides of this baseline.
    fn default() -> Self {
        CampaignConfig {
            seed: 0,
            scale: 1.0,
            run_apps: true,
            run_static: true,
            run_passive: true,
            passive_tick_s: 1.0,
            snapshot_tick_s: 0.1,
            gap_s: 4.0,
            fault_profile: FaultProfile::None,
            max_retries: 2,
            fail_fast: false,
            population: None,
        }
    }
}

impl CampaignConfig {
    /// The full 8-day campaign at paper scale.
    pub fn full(seed: u64) -> Self {
        CampaignConfig {
            seed,
            ..Self::default()
        }
    }

    /// A miniature campaign for tests/examples: ~4 % of cycles, coarser
    /// passive cadence.
    pub fn quick(seed: u64) -> Self {
        CampaignConfig {
            scale: 0.04,
            passive_tick_s: 5.0,
            ..Self::full(seed)
        }
    }

    /// Network-tests-only variant of [`CampaignConfig::quick`].
    pub fn quick_network_only(seed: u64) -> Self {
        CampaignConfig {
            run_apps: false,
            ..Self::quick(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_is_full_scale() {
        let c = CampaignConfig::full(1);
        assert_eq!(c.scale, 1.0);
        assert!(c.run_apps && c.run_static && c.run_passive);
    }

    #[test]
    fn quick_is_subsampled() {
        let c = CampaignConfig::quick(1);
        assert!(c.scale < 0.2);
    }

    #[test]
    fn faults_are_off_by_default() {
        for c in [CampaignConfig::full(1), CampaignConfig::quick(1)] {
            assert_eq!(c.fault_profile, FaultProfile::None);
            assert_eq!(c.max_retries, 2);
            assert!(!c.fail_fast);
        }
    }
}
