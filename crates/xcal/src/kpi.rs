//! Cross-layer KPI samples: the 500 ms records XCAL logs during tests.
//!
//! Each sample joins the application-layer throughput of a 500 ms window
//! (when a throughput test is running) with the PHY/RRC state — exactly the
//! join the paper's Table 2 correlation analysis runs on.

use serde::{Deserialize, Serialize};

use wheels_geo::region::RegionKind;
use wheels_geo::timezone::Timezone;
use wheels_radio::band::Technology;
use wheels_ran::cell::CellId;
use wheels_ran::ue::LinkSnapshot;

/// One 500 ms cross-layer sample.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KpiSample {
    /// Window end, plan seconds.
    pub time_s: f64,
    /// Application-layer throughput over the window, Mbps (None for
    /// RTT/app tests where no bulk transfer is running).
    pub tput_mbps: Option<f32>,
    /// Serving technology.
    pub tech: Technology,
    /// Serving cell.
    pub cell: CellId,
    /// Primary cell RSRP, dBm.
    pub rsrp_dbm: f32,
    /// Wideband SINR (of the measured direction), dB.
    pub sinr_db: f32,
    /// Primary cell MCS (of the measured direction).
    pub mcs: u8,
    /// Residual BLER.
    pub bler: f32,
    /// Aggregated carriers (of the measured direction).
    pub ca: u8,
    /// Handovers that executed within this window.
    pub handovers_in_window: u8,
    /// Vehicle speed, m/s.
    pub speed_mps: f32,
    /// Odometer, meters.
    pub odometer_m: f64,
    /// Region kind.
    pub region: RegionKind,
    /// Timezone.
    pub timezone: Timezone,
    /// Whether any part of the window was inside a handover interruption.
    pub in_handover: bool,
}

impl KpiSample {
    /// Build a sample from a link snapshot for the downlink direction.
    pub fn from_snapshot_dl(s: &LinkSnapshot, tput_mbps: Option<f32>, hos: u8) -> Self {
        Self::build(s, tput_mbps, hos, s.sinr_dl_db, s.mcs_dl, s.ca_dl)
    }

    /// Build a sample from a link snapshot for the uplink direction.
    pub fn from_snapshot_ul(s: &LinkSnapshot, tput_mbps: Option<f32>, hos: u8) -> Self {
        Self::build(s, tput_mbps, hos, s.sinr_ul_db, s.mcs_ul, s.ca_ul)
    }

    fn build(
        s: &LinkSnapshot,
        tput_mbps: Option<f32>,
        hos: u8,
        sinr: f64,
        mcs: u8,
        ca: u8,
    ) -> Self {
        KpiSample {
            time_s: s.time_s,
            tput_mbps,
            tech: s.tech,
            cell: s.cell,
            rsrp_dbm: s.rsrp_dbm as f32,
            sinr_db: sinr as f32,
            mcs,
            bler: s.bler as f32,
            ca,
            handovers_in_window: hos,
            speed_mps: s.speed_mps as f32,
            odometer_m: s.odometer_m,
            region: s.region,
            timezone: s.timezone,
            in_handover: s.in_handover,
        }
    }

    /// Speed in mph (the unit of the paper's figures).
    pub fn speed_mph(&self) -> f64 {
        wheels_geo::mps_to_mph(self.speed_mps as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> LinkSnapshot {
        LinkSnapshot {
            time_s: 100.0,
            odometer_m: 5_000.0,
            speed_mps: 26.8,
            region: RegionKind::Highway,
            timezone: Timezone::Pacific,
            tech: Technology::Nr5gMid,
            cell: CellId(42),
            outage: false,
            rsrp_dbm: -95.0,
            sinr_dl_db: 12.0,
            sinr_ul_db: 10.0,
            mcs_dl: 15,
            mcs_ul: 12,
            bler: 0.09,
            ca_dl: 2,
            ca_ul: 1,
            cap_dl_mbps: 120.0,
            cap_ul_mbps: 30.0,
            in_handover: false,
            handover: None,
        }
    }

    #[test]
    fn dl_sample_uses_dl_kpis() {
        let k = KpiSample::from_snapshot_dl(&snapshot(), Some(88.0), 1);
        assert_eq!(k.mcs, 15);
        assert_eq!(k.ca, 2);
        assert_eq!(k.sinr_db, 12.0);
        assert_eq!(k.tput_mbps, Some(88.0));
        assert_eq!(k.handovers_in_window, 1);
    }

    #[test]
    fn ul_sample_uses_ul_kpis() {
        let k = KpiSample::from_snapshot_ul(&snapshot(), None, 0);
        assert_eq!(k.mcs, 12);
        assert_eq!(k.ca, 1);
        assert_eq!(k.sinr_db, 10.0);
        assert!(k.tput_mbps.is_none());
    }

    #[test]
    fn speed_converts_to_mph() {
        let k = KpiSample::from_snapshot_dl(&snapshot(), None, 0);
        assert!((k.speed_mph() - 59.95).abs() < 0.1);
    }

    #[test]
    fn serializes_to_json() {
        let k = KpiSample::from_snapshot_dl(&snapshot(), Some(10.0), 0);
        let j = serde_json::to_string(&k).unwrap();
        assert!(j.contains("\"Nr5gMid\""));
        let back: KpiSample = serde_json::from_str(&j).unwrap();
        assert_eq!(back.cell, CellId(42));
    }
}
