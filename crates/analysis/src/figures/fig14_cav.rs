//! Fig. 14 (Verizon) / Fig. 20 (all operators): the CAV app.

use wheels_ran::operator::Operator;
use wheels_xcal::database::{TestKind, TestRecord};

use crate::ecdf::Ecdf;
use crate::index::AnalysisIndex;
use crate::render::{cdf_header, cdf_row};
use crate::stats::pearson;

/// One operator's CAV results.
#[derive(Debug, Clone)]
pub struct OpCavResults {
    /// Operator.
    pub op: Operator,
    /// Driving E2E per run (mean ms), with point-cloud compression.
    pub e2e_compressed: Ecdf,
    /// Driving E2E per run, raw 2 MB point clouds.
    pub e2e_raw: Ecdf,
    /// Lowest E2E ever observed (compressed), ms.
    pub min_e2e: Option<f64>,
    /// Pearson r between handovers-per-run and E2E.
    pub ho_e2e_corr: f64,
}

/// Fig. 14 data for all operators.
#[derive(Debug, Clone)]
pub struct CavResults {
    /// Per-operator results.
    pub per_op: Vec<OpCavResults>,
}

fn runs<'a>(ix: &'a AnalysisIndex<'a>, op: Operator) -> impl Iterator<Item = &'a TestRecord> + 'a {
    ix.records(op, TestKind::AppCav, false)
}

/// Compute CAV results from the index's record partitions.
pub fn compute(ix: &AnalysisIndex<'_>) -> CavResults {
    let per_op = ix
        .ops()
        .iter()
        .map(|&op| {
            let e2e = |compressed: bool| {
                Ecdf::new(runs(ix, op).filter_map(|r| {
                    let a = r.app.as_ref()?;
                    (a.compressed == Some(compressed))
                        .then_some(a.e2e_ms_mean.map(f64::from))
                        .flatten()
                }))
            };
            let e2e_compressed = e2e(true);
            let e2e_raw = e2e(false);
            let min_e2e = if e2e_compressed.is_empty() {
                None
            } else {
                Some(e2e_compressed.min())
            };
            let pairs: Vec<(f64, f64)> = runs(ix, op)
                .filter_map(|r| {
                    let a = r.app.as_ref()?;
                    if a.compressed != Some(true) {
                        return None;
                    }
                    Some((r.handovers.len() as f64, a.e2e_ms_mean? as f64))
                })
                .collect();
            let ho_e2e_corr = pearson(
                &pairs.iter().map(|p| p.0).collect::<Vec<_>>(),
                &pairs.iter().map(|p| p.1).collect::<Vec<_>>(),
            );
            OpCavResults {
                op,
                e2e_compressed,
                e2e_raw,
                min_e2e,
                ho_e2e_corr,
            }
        })
        .collect();
    CavResults { per_op }
}

impl CavResults {
    /// Results for one operator.
    pub fn for_op(&self, op: Operator) -> &OpCavResults {
        self.per_op
            .iter()
            .find(|p| p.op == op)
            .expect("all operators computed")
    }

    /// Render the figure.
    pub fn render(&self) -> String {
        let mut out = cdf_header("Fig. 14/20 — CAV app (per run)");
        out.push('\n');
        for p in &self.per_op {
            out.push_str(&cdf_row(&format!("{} E2E comp (ms)", p.op.code()), &p.e2e_compressed));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} E2E raw (ms)", p.op.code()), &p.e2e_raw));
            out.push('\n');
            out.push_str(&format!(
                "  {} min E2E {:?} ms (paper: never under 148 ms) | r(HOs,E2E)={:+.2}\n",
                p.op.code(),
                p.min_e2e.map(|v| v.round()),
                p.ho_e2e_corr
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::small_ix;

    #[test]
    fn hundred_ms_budget_unreachable() {
        // §7.1.2: lowest E2E across the whole trip was 148 ms.
        let f = compute(small_ix());
        for op in Operator::ALL {
            if let Some(min) = f.for_op(op).min_e2e {
                assert!(min > 100.0, "{op}: min E2E {min}");
            }
        }
    }

    #[test]
    fn compression_cuts_e2e_several_fold() {
        // §7.1.2: ~8× median reduction.
        let f = compute(small_ix());
        for op in Operator::ALL {
            let p = f.for_op(op);
            if p.e2e_compressed.len() < 10 || p.e2e_raw.len() < 10 {
                continue;
            }
            let ratio = p.e2e_raw.median() / p.e2e_compressed.median();
            assert!(ratio > 2.5, "{op}: ratio {ratio}");
        }
    }

    #[test]
    fn driving_median_hundreds_of_ms() {
        // Paper: 269 ms median (compressed) while driving.
        let f = compute(small_ix());
        let p = f.for_op(Operator::Verizon);
        if p.e2e_compressed.len() >= 10 {
            let m = p.e2e_compressed.median();
            assert!((120.0..900.0).contains(&m), "median {m}");
        }
    }

    #[test]
    fn no_ho_correlation() {
        let f = compute(small_ix());
        for op in Operator::ALL {
            let p = f.for_op(op);
            if p.e2e_compressed.len() < 30 {
                continue;
            }
            assert!(p.ho_e2e_corr.abs() < 0.55, "{op}");
        }
    }
}
