//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` with no
//! `syn`/`quote` (the registry is unreachable, so the macro parses the
//! item's `TokenStream` directly). Supports exactly what this workspace
//! declares: non-generic structs (named, tuple, unit) and enums whose
//! variants are unit, tuple, or struct-like — serde's externally-tagged
//! representation. Unsupported shapes (generics, unions) panic at compile
//! time with a clear message rather than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let out = match &item {
        Item::Struct { name, fields } => gen_struct_ser(name, fields),
        Item::Enum { name, variants } => gen_enum_ser(name, variants),
    };
    out.parse().expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let out = match &item {
        Item::Struct { name, fields } => gen_struct_de(name, fields),
        Item::Enum { name, variants } => gen_enum_de(name, variants),
    };
    out.parse().expect("serde_derive: generated Deserialize impl parses")
}

// ------------------------------------------------------------------ parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = ident_at(&tokens, i).expect("serde_derive: expected `struct` or `enum`");
    i += 1;
    let name = ident_at(&tokens, i).expect("serde_derive: expected item name");
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported ({name})");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("serde_derive: enum {name} without a body"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive (vendored): cannot derive for `{other}` items"),
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Skip `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-fields body: `a: T, b: U<V, W>, ...`.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i)
            .unwrap_or_else(|| panic!("serde_derive: expected field name, got {:?}", tokens[i]));
        names.push(name);
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
    }
    names
}

/// Advance past one type, stopping after the field-separating comma (or at
/// end of input). Commas nested in `<...>` or delimiter groups don't count.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            },
            _ => {}
        }
        *i += 1;
    }
}

/// Number of fields in a tuple body: `pub u32, (A, B)` etc.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    for (k, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                // A trailing comma doesn't start a new field.
                ',' if angle == 0 && k + 1 < tokens.len() => count += 1,
                _ => {}
            }
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i)
            .unwrap_or_else(|| panic!("serde_derive: expected variant name, got {:?}", tokens[i]));
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive (vendored): explicit discriminants are not supported");
        }
        variants.push((name, fields));
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ------------------------------------------------------------------ codegen

fn obj_pair(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from(\"{key}\"), {value_expr})")
}

fn object_of(pairs: &[String]) -> String {
    if pairs.is_empty() {
        "::serde::Value::Object(::std::vec::Vec::new())".to_string()
    } else {
        format!(
            "::serde::Value::Object(::std::vec::Vec::from([{}]))",
            pairs.join(", ")
        )
    }
}

fn array_of(items: &[String]) -> String {
    if items.is_empty() {
        "::serde::Value::Array(::std::vec::Vec::new())".to_string()
    } else {
        format!(
            "::serde::Value::Array(::std::vec::Vec::from([{}]))",
            items.join(", ")
        )
    }
}

/// Statements streaming a named-fields payload (`{bind}` is `self.` for
/// structs, empty for enum-variant bindings).
fn stream_named(fields: &[String], bind: &str) -> String {
    let mut s = String::from("w.begin_object();\n");
    for f in fields {
        s.push_str(&format!(
            "w.key(\"{f}\"); ::serde::Serialize::stream(&{bind}{f}, w);\n"
        ));
    }
    s.push_str("w.end_object();");
    s
}

/// Statements streaming a tuple payload from the given accessors.
fn stream_tuple(accessors: &[String]) -> String {
    let mut s = String::from("w.begin_array();\n");
    for a in accessors {
        s.push_str(&format!("w.elem(); ::serde::Serialize::stream(&{a}, w);\n"));
    }
    s.push_str("w.end_array();");
    s
}

fn gen_struct_ser(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(names) => {
            let pairs: Vec<String> = names
                .iter()
                .map(|f| obj_pair(f, &format!("::serde::Serialize::to_value(&self.{f})")))
                .collect();
            object_of(&pairs)
        }
        // One-field tuple structs are newtypes: serialize transparently.
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            array_of(&items)
        }
    };
    // Direct visitor emission: same bytes as writing the tree above, but
    // with zero intermediate Value nodes or key-String allocations.
    let stream_body = match fields {
        Fields::Unit => "w.null();".to_string(),
        Fields::Named(names) => stream_named(names, "self."),
        Fields::Tuple(1) => "::serde::Serialize::stream(&self.0, w);".to_string(),
        Fields::Tuple(n) => {
            let accessors: Vec<String> = (0..*n).map(|k| format!("self.{k}")).collect();
            stream_tuple(&accessors)
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         fn stream(&self, w: &mut ::serde::ser::JsonWriter<'_>) {{\n{stream_body}\n}}\n\
         }}"
    )
}

fn gen_struct_de(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(v, \"{f}\")?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::de::elem(v, {k})?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn gen_enum_ser(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = Vec::new();
    for (v, fields) in variants {
        let arm = match fields {
            Fields::Unit => format!(
                "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
            ),
            Fields::Named(fs) => {
                let binds = fs.join(", ");
                let pairs: Vec<String> = fs
                    .iter()
                    .map(|f| obj_pair(f, &format!("::serde::Serialize::to_value({f})")))
                    .collect();
                let payload = object_of(&pairs);
                let tagged = object_of(&[obj_pair(v, &payload)]);
                format!("{name}::{v} {{ {binds} }} => {tagged},")
            }
            Fields::Tuple(1) => {
                let tagged = object_of(&[obj_pair(v, "::serde::Serialize::to_value(f0)")]);
                format!("{name}::{v}(f0) => {tagged},")
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                let tagged = object_of(&[obj_pair(v, &array_of(&items))]);
                format!("{name}::{v}({}) => {tagged},", binds.join(", "))
            }
        };
        arms.push(arm);
    }
    // Streaming arms: externally-tagged, same layout as the tree arms.
    let mut stream_arms = Vec::new();
    for (v, fields) in variants {
        let arm = match fields {
            Fields::Unit => format!("{name}::{v} => w.str(\"{v}\"),"),
            Fields::Named(fs) => {
                let binds = fs.join(", ");
                let payload = stream_named(fs, "*");
                format!(
                    "{name}::{v} {{ {binds} }} => {{\n\
                     w.begin_object(); w.key(\"{v}\");\n{payload}\nw.end_object();\n}}"
                )
            }
            Fields::Tuple(1) => format!(
                "{name}::{v}(f0) => {{\n\
                 w.begin_object(); w.key(\"{v}\");\n\
                 ::serde::Serialize::stream(f0, w);\nw.end_object();\n}}"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                let payload = stream_tuple(&binds);
                format!(
                    "{name}::{v}({}) => {{\n\
                     w.begin_object(); w.key(\"{v}\");\n{payload}\nw.end_object();\n}}",
                    binds.join(", ")
                )
            }
        };
        stream_arms.push(arm);
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{}\n}}\n\
         }}\n\
         fn stream(&self, w: &mut ::serde::ser::JsonWriter<'_>) {{\n\
         match self {{\n{}\n}}\n\
         }}\n\
         }}",
        arms.join("\n"),
        stream_arms.join("\n")
    )
}

fn gen_enum_de(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = Vec::new();
    for (v, fields) in variants {
        let arm = match fields {
            Fields::Unit => {
                format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),")
            }
            Fields::Named(fs) => {
                let inits: Vec<String> = fs
                    .iter()
                    .map(|f| format!("{f}: ::serde::de::field(p, \"{f}\")?"))
                    .collect();
                format!(
                    "\"{v}\" => {{\n\
                     let p = payload.ok_or_else(|| ::serde::Error::msg(\"variant {v} needs data\"))?;\n\
                     ::std::result::Result::Ok({name}::{v} {{ {} }})\n\
                     }}",
                    inits.join(", ")
                )
            }
            Fields::Tuple(1) => format!(
                "\"{v}\" => {{\n\
                 let p = payload.ok_or_else(|| ::serde::Error::msg(\"variant {v} needs data\"))?;\n\
                 ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(p)?))\n\
                 }}"
            ),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::de::elem(p, {k})?"))
                    .collect();
                format!(
                    "\"{v}\" => {{\n\
                     let p = payload.ok_or_else(|| ::serde::Error::msg(\"variant {v} needs data\"))?;\n\
                     ::std::result::Result::Ok({name}::{v}({}))\n\
                     }}",
                    inits.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         let (variant, payload) = ::serde::de::variant(v)?;\n\
         let _ = &payload;\n\
         match variant {{\n{}\n\
         other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\n\
             \"unknown {name} variant: {{other}}\"\n\
         ))),\n\
         }}\n\
         }}\n\
         }}",
        arms.join("\n")
    )
}
