//! Declarative scenario layer: the world a campaign runs in, as data.
//!
//! A [`ScenarioSpec`] captures everything the campaign used to hard-wire:
//! the route waypoints, the day plan and speed profile, the operator
//! panel with per-technology deployment tuning, the measurement-server
//! fleet, and the test round-robin schedule. Specs are plain serde
//! values, so worlds can be shipped as JSON files and run with
//! `repro --scenario FILE.json`.
//!
//! The paper's world is [`ScenarioSpec::paper`], built field-by-field
//! from the same constants the direct code path uses — so compiling it
//! reproduces [`Campaign::new`](crate::Campaign::new) byte-for-byte (a
//! test and a CI gate assert this). Operator behavior is expressed as a
//! *slot* (one of the three calibrated parameter families: `verizon`,
//! `tmobile`, `att`) plus multiplicative per-technology scales on
//! coverage, cell spacing, and upgrade-policy promotion — the neutral
//! scale 1.0 is an exact IEEE-754 no-op, which is what makes the paper
//! spec's identity guarantee possible without duplicating every
//! calibrated table into the spec.

use wheels_geo::cities::{City, ROUTE_CITIES};
use wheels_geo::coord::LatLon;
use wheels_geo::route::{Route, PAPER_TOTAL_M};
use wheels_geo::timezone::Timezone;
use wheels_geo::trip::{DrivePlan, SpeedProfile, OVERNIGHT_CITIES};
use wheels_netsim::server::{
    Server, ServerKind, ServerSelector, CLOUD_CALIFORNIA, CLOUD_OHIO, EDGE_RADIUS_M,
};
use wheels_radio::band::Technology;
use wheels_ran::fleet::FleetParams;
use wheels_ran::load::LoadScale;
use wheels_ran::operator::Operator;
use wheels_ran::tuning::OperatorTuning;

/// One waypoint city of a scenario route.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CitySpec {
    /// Display name (unique on the route; overnight stops refer to it).
    pub name: String,
    /// Two-letter state code.
    pub state: String,
    /// City-center latitude, degrees.
    pub lat: f64,
    /// City-center longitude, degrees.
    pub lon: f64,
    /// Urban radius scale factor (1.0 = a typical major city).
    pub scale: f64,
    /// Counts as a major city (static baselines, Table 1).
    pub major: bool,
    /// Hosts an edge server.
    pub edge: bool,
}

/// The route: an ordered city polyline plus an optional odometer target.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RouteSpec {
    /// Waypoints in driving order (at least two).
    pub cities: Vec<CitySpec>,
    /// Calibrate segment lengths so the route totals this many meters
    /// (road curvature); `None` keeps geometric lengths.
    pub target_total_m: Option<f64>,
}

/// Day plan and vehicle speed process.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TripSpec {
    /// OU mean-reversion rate, 1/s.
    pub ou_theta: f64,
    /// OU noise std-dev, mph per sqrt(second).
    pub ou_sigma_mph: f64,
    /// Probability per meter of a stop event in city regions.
    pub city_stop_per_m: f64,
    /// Stop duration range, seconds.
    pub stop_s: (f64, f64),
    /// Hard speed cap, mph.
    pub max_mph: f64,
    /// Overnight stops by city name, in order; each splits a driving day.
    /// Names absent from the route are skipped, and the final day always
    /// ends at the route's end.
    pub overnight_cities: Vec<String>,
}

/// Per-technology multiplicative tuning of one operator (absent
/// technologies stay neutral).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TechScale {
    /// Technology key — a [`Technology::label`] string
    /// (`"LTE"`, `"LTE-A"`, `"5G-low"`, `"5G-mid"`, `"5G-mmWave"`).
    pub tech: String,
    /// Multiplier on the layer's route-coverage fraction.
    pub coverage: f64,
    /// Multiplier on cell spacing (larger = sparser deployment).
    pub spacing: f64,
    /// Multiplier on the upgrade-policy promotion probability.
    pub promotion: f64,
}

/// Multiplicative overrides on an operator's hidden load process (see
/// [`wheels_ran::load::LoadScale`]); every factor 1.0 is an exact no-op.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LoadScaleSpec {
    /// Multiplier on the median scheduler share.
    pub median: f64,
    /// Multiplier on the log-share standard deviation.
    pub sigma: f64,
    /// Multiplier on the deep-congestion arrival rate.
    pub congestion: f64,
}

/// The synthetic subscriber population living on the scenario's cells —
/// the fleet axis. `population: 0` (or an absent `subscribers` field) is
/// a strict no-op: no fleet state is built and every probe sees the
/// unmodified hidden load process.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SubscriberSpec {
    /// Total subscribers across the operator panel (the designed
    /// envelope is 10^3..=10^6), apportioned evenly over operators.
    pub population: u64,
    /// Demand-mix fraction of video-dominated subscribers.
    pub mix_video: f64,
    /// Demand-mix fraction of web-browsing subscribers.
    pub mix_web: f64,
    /// Demand-mix fraction of background-only subscribers.
    pub mix_background: f64,
    /// Optional 24-entry hour-of-day activity profile in [0, 1]; `None`
    /// takes the built-in busy-hour curve.
    pub diurnal: Option<Vec<f64>>,
    /// Optional log-normal σ of the per-cell attachment weights; `None`
    /// takes the default spatial clustering (0.6).
    pub attach_sigma: Option<f64>,
}

impl SubscriberSpec {
    /// A population with the default demand mix and diurnal profile.
    pub fn with_population(population: u64) -> Self {
        SubscriberSpec {
            population,
            mix_video: 0.55,
            mix_web: 0.35,
            mix_background: 0.10,
            diurnal: None,
            attach_sigma: None,
        }
    }

    /// Compile into the RAN's fleet parameters (population is the panel
    /// total here; the campaign apportions it per operator).
    pub fn fleet_params(&self) -> FleetParams {
        let mix = (self.mix_video + self.mix_web + self.mix_background).max(1e-9);
        let mut p = FleetParams {
            population: self.population,
            demand_per_sub_mbps: wheels_ran::fleet::demand_per_sub_mbps(
                self.mix_video / mix,
                self.mix_web / mix,
                self.mix_background / mix,
            ),
            ..FleetParams::default()
        };
        if let Some(d) = &self.diurnal {
            for (slot, v) in p.diurnal.iter_mut().zip(d) {
                *slot = *v;
            }
        }
        if let Some(sig) = self.attach_sigma {
            p.attach_sigma = sig;
        }
        p
    }
}

/// One operator of the scenario panel.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OperatorSpec {
    /// Calibrated parameter family to reuse: `"verizon"`, `"tmobile"`,
    /// or `"att"` (link configurations, beams, handover distribution).
    pub slot: String,
    /// Deployment/policy tuning; an empty list is the slot verbatim.
    pub scales: Vec<TechScale>,
    /// Whether this operator's tests may use edge servers; `None` takes
    /// the slot's default (only Verizon in the paper).
    pub edge_servers: Option<bool>,
    /// Declarative congestion tuning of the hidden load process; `None`
    /// is the neutral (exact no-op) scale.
    pub load: Option<LoadScaleSpec>,
}

/// One cloud datacenter of the server fleet.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CloudSpec {
    /// Site name (appears in records and figures).
    pub name: String,
    /// Datacenter latitude, degrees.
    pub lat: f64,
    /// Datacenter longitude, degrees.
    pub lon: f64,
}

/// The measurement-server fleet. Edge sites are the route cities flagged
/// [`CitySpec::edge`]; clouds are explicit.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetSpec {
    /// Cloud datacenters (at least one).
    pub clouds: Vec<CloudSpec>,
    /// Index into `clouds` per timezone, [`Timezone::ALL`] order.
    pub cloud_by_tz: Vec<usize>,
    /// Radius around an edge city within which the edge server is used,
    /// meters.
    pub edge_radius_m: f64,
}

/// The test round-robin: durations and which suites run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScheduleSpec {
    /// Bulk-transfer test duration, seconds (each direction).
    pub tput_s: f64,
    /// Ping test duration, seconds.
    pub rtt_s: f64,
    /// AR/CAV offload test duration, seconds (each variant).
    pub app_offload_s: f64,
    /// Video streaming session duration, seconds.
    pub video_s: f64,
    /// Cloud gaming session duration, seconds.
    pub game_s: f64,
    /// Include the killer-app tests in the round-robin.
    pub run_apps: bool,
    /// Run the static city baselines.
    pub run_static: bool,
    /// Run the passive handover-logger phones.
    pub run_passive: bool,
}

/// A complete declarative world: route, trip, operators, servers,
/// schedule. See the module docs for the identity guarantee of
/// [`ScenarioSpec::paper`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioSpec {
    /// Registry name (`repro --scenario NAME`).
    pub name: String,
    /// One-line description for `repro --list`.
    pub description: String,
    /// Route waypoints.
    pub route: RouteSpec,
    /// Day plan and speed process.
    pub trip: TripSpec,
    /// Operator panel (at least one).
    pub operators: Vec<OperatorSpec>,
    /// Server fleet.
    pub fleet: FleetSpec,
    /// Round-robin schedule.
    pub schedule: ScheduleSpec,
    /// Synthetic subscriber population (the fleet axis); `None` or
    /// `population: 0` is a strict no-op on the probe dataset.
    pub subscribers: Option<SubscriberSpec>,
}

/// The compiled round-robin parameters a [`Campaign`](crate::Campaign)
/// executes.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Bulk-transfer test duration, seconds.
    pub tput_s: f64,
    /// Ping test duration, seconds.
    pub rtt_s: f64,
    /// AR/CAV offload test duration, seconds.
    pub app_offload_s: f64,
    /// Video session duration, seconds.
    pub video_s: f64,
    /// Gaming session duration, seconds.
    pub game_s: f64,
    /// Scenario-level app-suite switch.
    pub run_apps: bool,
    /// Scenario-level static-suite switch.
    pub run_static: bool,
    /// Scenario-level passive-logger switch.
    pub run_passive: bool,
}

impl Schedule {
    /// The paper's §3 round-robin: 30 s throughput each way, 20 s ping,
    /// 20 s per offload variant, 180 s video, 60 s gaming; all suites on.
    pub fn paper() -> Self {
        Schedule {
            tput_s: 30.0,
            rtt_s: 20.0,
            app_offload_s: 20.0,
            video_s: 180.0,
            game_s: 60.0,
            run_apps: true,
            run_static: true,
            run_passive: true,
        }
    }
}

/// A compiled scenario: the concrete world objects a campaign needs.
#[derive(Debug)]
pub struct ScenarioWorld {
    /// The drive plan (owns the route).
    pub plan: DrivePlan,
    /// The operator panel: slot, deployment tuning, edge entitlement.
    pub ops: Vec<(Operator, OperatorTuning, bool)>,
    /// The server selector.
    pub selector: ServerSelector,
    /// The round-robin schedule.
    pub schedule: Schedule,
    /// Compiled subscriber-fleet template (panel-total population), when
    /// the spec declares a non-zero population.
    pub subscribers: Option<FleetParams>,
}

/// Intern a string into a `&'static str`, deduplicating so repeated
/// builds of the same scenario don't grow the leak set.
fn intern(s: &str) -> &'static str {
    // lint:allow(D2): identity intern pool — membership get/insert only,
    // never iterated, so hash order cannot reach any output
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    // lint:allow(D7): a poisoned lock means another thread already panicked; there is no degraded mode to offer
    let mut set = pool.lock().expect("intern pool poisoned");
    if let Some(&hit) = set.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

fn tech_by_key(key: &str) -> Option<Technology> {
    Technology::ALL.into_iter().find(|t| t.label() == key)
}

fn tech_pos(tech: Technology) -> usize {
    Technology::ALL
        .iter()
        .position(|&t| t == tech)
        // lint:allow(D7): Technology::ALL enumerates every variant, so the position always exists
        .expect("known technology")
}

impl ScenarioSpec {
    /// The paper's world, expressed as data. Every field is copied from
    /// the constant the direct code path reads, so compiling this spec is
    /// byte-identical to [`Campaign::new`](crate::Campaign::new).
    pub fn paper() -> Self {
        let profile = SpeedProfile::default();
        ScenarioSpec {
            name: "paper".to_string(),
            description: "LA->Boston 8-day cross-country drive, 3 operators (the paper's world)"
                .to_string(),
            route: RouteSpec {
                cities: ROUTE_CITIES
                    .iter()
                    .map(|c| CitySpec {
                        name: c.name.to_string(),
                        state: c.state.to_string(),
                        lat: c.center.lat,
                        lon: c.center.lon,
                        scale: c.scale,
                        major: c.major,
                        edge: c.edge_server,
                    })
                    .collect(),
                target_total_m: Some(PAPER_TOTAL_M),
            },
            trip: TripSpec {
                ou_theta: profile.ou_theta,
                ou_sigma_mph: profile.ou_sigma_mph,
                city_stop_per_m: profile.city_stop_per_m,
                stop_s: profile.stop_s,
                max_mph: profile.max_mph,
                overnight_cities: OVERNIGHT_CITIES.iter().map(|s| s.to_string()).collect(),
            },
            operators: Operator::ALL
                .iter()
                .map(|op| OperatorSpec {
                    slot: op.slot_key().to_string(),
                    scales: Vec::new(),
                    edge_servers: None,
                    load: None,
                })
                .collect(),
            fleet: FleetSpec {
                clouds: [CLOUD_CALIFORNIA, CLOUD_OHIO]
                    .iter()
                    .map(|s| CloudSpec {
                        name: s.name.to_string(),
                        lat: s.pos.lat,
                        lon: s.pos.lon,
                    })
                    .collect(),
                cloud_by_tz: vec![0, 0, 1, 1],
                edge_radius_m: EDGE_RADIUS_M,
            },
            schedule: ScheduleSpec {
                tput_s: 30.0,
                rtt_s: 20.0,
                app_offload_s: 20.0,
                video_s: 180.0,
                game_s: 60.0,
                run_apps: true,
                run_static: true,
                run_passive: true,
            },
            subscribers: None,
        }
    }

    /// A sustained-high-speed rail corridor: two operators on a sparse
    /// mid-band deployment, no city stop-and-go, one long driving day.
    pub fn rail_corridor() -> Self {
        let city = |name: &str, state: &str, lat: f64, lon: f64, scale: f64, major, edge| CitySpec {
            name: name.to_string(),
            state: state.to_string(),
            lat,
            lon,
            scale,
            major,
            edge,
        };
        ScenarioSpec {
            name: "rail-corridor".to_string(),
            description: "Sustained 100+ km/h corridor, 2 operators, sparse mid-band, no mmWave"
                .to_string(),
            route: RouteSpec {
                cities: vec![
                    city("Seattle", "WA", 47.6062, -122.3321, 1.2, true, true),
                    city("Tacoma", "WA", 47.2529, -122.4443, 0.5, false, false),
                    city("Olympia", "WA", 47.0379, -122.9007, 0.3, false, false),
                    city("Kelso", "WA", 46.1460, -122.9082, 0.15, false, false),
                    city("Vancouver", "WA", 45.6387, -122.6615, 0.5, false, false),
                    city("Portland", "OR", 45.5152, -122.6784, 1.0, true, false),
                    city("Salem", "OR", 44.9429, -123.0351, 0.4, false, false),
                    city("Albany", "OR", 44.6365, -123.1059, 0.2, false, false),
                    city("Eugene", "OR", 44.0521, -123.0868, 0.6, true, false),
                ],
                target_total_m: Some(550_000.0),
            },
            trip: TripSpec {
                ou_theta: 0.08,
                ou_sigma_mph: 1.4,
                // A rail corridor has no traffic lights: stops are rare.
                city_stop_per_m: 1.0 / 40_000.0,
                stop_s: (45.0, 120.0),
                max_mph: 110.0,
                overnight_cities: vec!["Portland".to_string(), "Eugene".to_string()],
            },
            operators: vec![
                OperatorSpec {
                    slot: "tmobile".to_string(),
                    // Mid-band-only, sparser than the paper's T-Mobile:
                    // no mmWave, thinner LTE-A, wider tower spacing.
                    scales: vec![
                        TechScale {
                            tech: "5G-mmWave".to_string(),
                            coverage: 0.0,
                            spacing: 1.0,
                            promotion: 1.0,
                        },
                        TechScale {
                            tech: "5G-mid".to_string(),
                            coverage: 0.75,
                            spacing: 1.6,
                            promotion: 0.9,
                        },
                        TechScale {
                            tech: "LTE-A".to_string(),
                            coverage: 0.8,
                            spacing: 1.3,
                            promotion: 1.0,
                        },
                    ],
                    edge_servers: None,
                    load: None,
                },
                OperatorSpec {
                    slot: "att".to_string(),
                    scales: vec![
                        TechScale {
                            tech: "5G-mmWave".to_string(),
                            coverage: 0.0,
                            spacing: 1.0,
                            promotion: 1.0,
                        },
                        TechScale {
                            tech: "5G-low".to_string(),
                            coverage: 0.9,
                            spacing: 1.4,
                            promotion: 1.1,
                        },
                    ],
                    edge_servers: Some(true),
                    load: None,
                },
            ],
            fleet: FleetSpec {
                clouds: vec![CloudSpec {
                    name: "EC2 Oregon".to_string(),
                    lat: 45.84,
                    lon: -119.7,
                }],
                cloud_by_tz: vec![0, 0, 0, 0],
                edge_radius_m: 40_000.0,
            },
            schedule: ScheduleSpec {
                tput_s: 30.0,
                rtt_s: 20.0,
                app_offload_s: 20.0,
                video_s: 120.0,
                game_s: 60.0,
                run_apps: true,
                run_static: true,
                run_passive: true,
            },
            subscribers: None,
        }
    }

    /// A dense urban loop: three operators with aggressive mmWave
    /// build-out, low vehicle speeds, frequent stops, edge everywhere.
    pub fn metro_loop() -> Self {
        let city = |name: &str, state: &str, lat: f64, lon: f64, scale: f64, edge| CitySpec {
            name: name.to_string(),
            state: state.to_string(),
            lat,
            lon,
            scale,
            major: true,
            edge,
        };
        ScenarioSpec {
            name: "metro-loop".to_string(),
            description: "Dense urban mmWave loop, 3 operators, low speed, edge in every borough"
                .to_string(),
            route: RouteSpec {
                cities: vec![
                    city("Downtown", "NY", 40.7128, -74.0060, 1.6, true),
                    city("Midtown", "NY", 40.7549, -73.9840, 1.6, true),
                    city("Uptown", "NY", 40.8116, -73.9465, 1.2, false),
                    city("Bronx Hub", "NY", 40.8448, -73.8648, 1.0, true),
                    city("Queens Plaza", "NY", 40.7498, -73.9375, 1.2, false),
                    city("Brooklyn Center", "NY", 40.6782, -73.9442, 1.4, true),
                    city("Harbor Point", "NY", 40.7003, -74.0140, 1.0, false),
                ],
                target_total_m: Some(90_000.0),
            },
            trip: TripSpec {
                ou_theta: 0.06,
                ou_sigma_mph: 2.8,
                // Dense signals: a stop every few hundred meters.
                city_stop_per_m: 1.0 / 350.0,
                stop_s: (10.0, 45.0),
                max_mph: 45.0,
                overnight_cities: vec!["Brooklyn Center".to_string()],
            },
            operators: vec![
                OperatorSpec {
                    slot: "verizon".to_string(),
                    scales: vec![
                        TechScale {
                            tech: "5G-mmWave".to_string(),
                            coverage: 1.8,
                            spacing: 0.6,
                            promotion: 1.4,
                        },
                        TechScale {
                            tech: "5G-mid".to_string(),
                            coverage: 1.3,
                            spacing: 0.8,
                            promotion: 1.2,
                        },
                    ],
                    edge_servers: Some(true),
                    load: None,
                },
                OperatorSpec {
                    slot: "tmobile".to_string(),
                    scales: vec![
                        TechScale {
                            tech: "5G-mmWave".to_string(),
                            coverage: 2.5,
                            spacing: 0.7,
                            promotion: 1.3,
                        },
                    ],
                    edge_servers: Some(true),
                    load: None,
                },
                OperatorSpec {
                    slot: "att".to_string(),
                    scales: vec![
                        TechScale {
                            tech: "5G-mmWave".to_string(),
                            coverage: 3.0,
                            spacing: 0.8,
                            promotion: 1.5,
                        },
                        TechScale {
                            tech: "5G-mid".to_string(),
                            coverage: 1.2,
                            spacing: 0.9,
                            promotion: 1.2,
                        },
                    ],
                    edge_servers: Some(true),
                    load: None,
                },
            ],
            fleet: FleetSpec {
                clouds: vec![CloudSpec {
                    name: "EC2 Virginia".to_string(),
                    lat: 38.94,
                    lon: -77.45,
                }],
                cloud_by_tz: vec![0, 0, 0, 0],
                edge_radius_m: 15_000.0,
            },
            schedule: ScheduleSpec {
                tput_s: 30.0,
                rtt_s: 20.0,
                app_offload_s: 20.0,
                video_s: 180.0,
                game_s: 60.0,
                run_apps: true,
                run_static: true,
                run_passive: true,
            },
            subscribers: None,
        }
    }

    /// Every registered scenario, paper first.
    pub fn registry() -> Vec<ScenarioSpec> {
        vec![Self::paper(), Self::rail_corridor(), Self::metro_loop()]
    }

    /// Look a registered scenario up by name.
    pub fn find(name: &str) -> Option<ScenarioSpec> {
        Self::registry().into_iter().find(|s| s.name == name)
    }

    /// Check the spec is internally consistent; returns the first problem
    /// found.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name is empty".to_string());
        }
        if self.route.cities.len() < 2 {
            return Err(format!(
                "route needs at least two cities, got {}",
                self.route.cities.len()
            ));
        }
        for c in &self.route.cities {
            if !(c.lat.is_finite() && c.lon.is_finite() && c.scale.is_finite() && c.scale > 0.0) {
                return Err(format!("city {:?} has non-finite or non-positive fields", c.name));
            }
        }
        if let Some(t) = self.route.target_total_m {
            if !(t.is_finite() && t > 0.0) {
                return Err(format!("target_total_m must be positive, got {t}"));
            }
        }
        if self.trip.overnight_cities.is_empty() {
            return Err("trip needs at least one overnight city".to_string());
        }
        for name in &self.trip.overnight_cities {
            if !self.route.cities.iter().any(|c| &c.name == name) {
                return Err(format!("overnight city {name:?} is not on the route"));
            }
        }
        if !(self.trip.stop_s.0 < self.trip.stop_s.1 && self.trip.stop_s.0 >= 0.0) {
            return Err(format!("stop_s range {:?} is invalid", self.trip.stop_s));
        }
        if !(self.trip.max_mph.is_finite() && self.trip.max_mph > 0.0) {
            return Err(format!("max_mph must be positive, got {}", self.trip.max_mph));
        }
        if self.operators.is_empty() {
            return Err("scenario needs at least one operator".to_string());
        }
        for o in &self.operators {
            if Operator::from_slot(&o.slot).is_none() {
                return Err(format!(
                    "unknown operator slot {:?} (verizon|tmobile|att)",
                    o.slot
                ));
            }
            for s in &o.scales {
                if tech_by_key(&s.tech).is_none() {
                    return Err(format!("unknown technology key {:?}", s.tech));
                }
                if !(s.coverage.is_finite() && s.coverage >= 0.0)
                    || !(s.spacing.is_finite() && s.spacing > 0.0)
                    || !(s.promotion.is_finite() && s.promotion >= 0.0)
                {
                    return Err(format!("scales for {:?} out of range", s.tech));
                }
            }
            if let Some(l) = &o.load {
                if !(l.median.is_finite() && l.median > 0.0)
                    || !(l.sigma.is_finite() && l.sigma >= 0.0)
                    || !(l.congestion.is_finite() && l.congestion >= 0.0)
                {
                    return Err(format!("load scale for slot {:?} out of range", o.slot));
                }
            }
        }
        let mut slots: Vec<&str> = self.operators.iter().map(|o| o.slot.as_str()).collect();
        slots.sort_unstable();
        slots.dedup();
        if slots.len() != self.operators.len() {
            return Err("operator slots must be distinct".to_string());
        }
        if self.fleet.clouds.is_empty() {
            return Err("fleet needs at least one cloud".to_string());
        }
        if self.fleet.cloud_by_tz.len() != Timezone::ALL.len() {
            return Err(format!(
                "cloud_by_tz needs one entry per timezone ({}), got {}",
                Timezone::ALL.len(),
                self.fleet.cloud_by_tz.len()
            ));
        }
        if let Some(&bad) = self
            .fleet
            .cloud_by_tz
            .iter()
            .find(|&&i| i >= self.fleet.clouds.len())
        {
            return Err(format!("cloud_by_tz index {bad} out of range"));
        }
        if !(self.fleet.edge_radius_m.is_finite() && self.fleet.edge_radius_m >= 0.0) {
            return Err(format!(
                "edge_radius_m must be non-negative, got {}",
                self.fleet.edge_radius_m
            ));
        }
        let s = &self.schedule;
        for (label, v) in [
            ("tput_s", s.tput_s),
            ("rtt_s", s.rtt_s),
            ("app_offload_s", s.app_offload_s),
            ("video_s", s.video_s),
            ("game_s", s.game_s),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("schedule {label} must be positive, got {v}"));
            }
        }
        if let Some(sub) = &self.subscribers {
            if sub.population > 100_000_000 {
                return Err(format!(
                    "population {} is beyond the designed envelope (<= 1e8)",
                    sub.population
                ));
            }
            for (label, v) in [
                ("mix_video", sub.mix_video),
                ("mix_web", sub.mix_web),
                ("mix_background", sub.mix_background),
            ] {
                if !(v.is_finite() && v >= 0.0) {
                    return Err(format!("subscribers.{label} must be >= 0, got {v}"));
                }
            }
            if sub.mix_video + sub.mix_web + sub.mix_background <= 0.0 {
                return Err("subscriber demand mix sums to zero".to_string());
            }
            if let Some(d) = &sub.diurnal {
                if d.len() != 24 {
                    return Err(format!("diurnal profile needs 24 entries, got {}", d.len()));
                }
                if d.iter().any(|v| !(v.is_finite() && (0.0..=1.0).contains(v))) {
                    return Err("diurnal entries must lie in [0, 1]".to_string());
                }
                if d.iter().all(|&v| v == 0.0) {
                    return Err("diurnal profile is identically zero".to_string());
                }
            }
            if let Some(sig) = sub.attach_sigma {
                if !(sig.is_finite() && (0.0..=3.0).contains(&sig)) {
                    return Err(format!("attach_sigma must lie in [0, 3], got {sig}"));
                }
            }
        }
        Ok(())
    }

    /// Compile the spec into concrete world objects for `seed`.
    ///
    /// # Panics
    /// Panics on an invalid spec; call [`ScenarioSpec::validate`] first
    /// when the spec comes from outside.
    pub fn build(&self, seed: u64) -> ScenarioWorld {
        let cities: Vec<City> = self
            .route
            .cities
            .iter()
            .map(|c| City {
                name: intern(&c.name),
                state: intern(&c.state),
                center: LatLon { lat: c.lat, lon: c.lon },
                scale: c.scale,
                major: c.major,
                edge_server: c.edge,
            })
            .collect();
        let route = Route::from_cities(cities, self.route.target_total_m);
        let profile = SpeedProfile {
            ou_theta: self.trip.ou_theta,
            ou_sigma_mph: self.trip.ou_sigma_mph,
            city_stop_per_m: self.trip.city_stop_per_m,
            stop_s: self.trip.stop_s,
            max_mph: self.trip.max_mph,
        };
        let overnights: Vec<&str> = self.trip.overnight_cities.iter().map(|s| s.as_str()).collect();
        let edge_sites: Vec<(LatLon, &'static str)> = route
            .cities()
            .iter()
            .filter(|c| c.edge_server)
            .map(|c| (c.center, c.name))
            .collect();
        let plan = DrivePlan::generate_with_stops(route, &profile, &overnights, seed);
        let ops = self
            .operators
            .iter()
            .map(|o| {
                // lint:allow(D7): build() is only reachable after validate(), which rejects unknown slots
                let op = Operator::from_slot(&o.slot).expect("validated operator slot");
                let mut tuning = OperatorTuning::NEUTRAL;
                for s in &o.scales {
                    // lint:allow(D7): validate() rejects unknown technology keys before build() runs
                    let ti = tech_pos(tech_by_key(&s.tech).expect("validated technology key"));
                    if let Some(c) = tuning.coverage_scale.get_mut(ti) {
                        *c = s.coverage;
                    }
                    if let Some(c) = tuning.spacing_scale.get_mut(ti) {
                        *c = s.spacing;
                    }
                    if let Some(c) = tuning.promotion_scale.get_mut(ti) {
                        *c = s.promotion;
                    }
                }
                if let Some(l) = &o.load {
                    tuning.load = LoadScale {
                        median_scale: l.median,
                        sigma_scale: l.sigma,
                        congestion_scale: l.congestion,
                    };
                }
                (op, tuning, o.edge_servers.unwrap_or(op.has_edge_servers()))
            })
            .collect();
        let clouds: Vec<Server> = self
            .fleet
            .clouds
            .iter()
            .map(|c| Server {
                kind: ServerKind::Cloud,
                pos: LatLon { lat: c.lat, lon: c.lon },
                name: intern(&c.name),
            })
            .collect();
        let selector = ServerSelector::from_parts(
            clouds,
            self.fleet.cloud_by_tz.clone(),
            edge_sites,
            self.fleet.edge_radius_m,
        );
        ScenarioWorld {
            plan,
            ops,
            selector,
            schedule: Schedule {
                tput_s: self.schedule.tput_s,
                rtt_s: self.schedule.rtt_s,
                app_offload_s: self.schedule.app_offload_s,
                video_s: self.schedule.video_s,
                game_s: self.schedule.game_s,
                run_apps: self.schedule.run_apps,
                run_static: self.schedule.run_static,
                run_passive: self.schedule.run_passive,
            },
            subscribers: self
                .subscribers
                .as_ref()
                .filter(|s| s.population > 0)
                .map(SubscriberSpec::fleet_params),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registry_scenario_validates() {
        for spec in ScenarioSpec::registry() {
            spec.validate().unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn registry_names_are_distinct_and_paper_first() {
        let names: Vec<String> = ScenarioSpec::registry().into_iter().map(|s| s.name).collect();
        assert_eq!(names[0], "paper");
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn paper_spec_is_neutral() {
        let spec = ScenarioSpec::paper();
        let world = spec.build(7);
        assert_eq!(world.plan.days().len(), 8);
        for (op, tuning, edge) in &world.ops {
            assert_eq!(*tuning, OperatorTuning::NEUTRAL);
            assert_eq!(*edge, op.has_edge_servers());
        }
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut s = ScenarioSpec::paper();
        s.operators.clear();
        assert!(s.validate().is_err());

        let mut s = ScenarioSpec::paper();
        s.route.cities.truncate(1);
        assert!(s.validate().is_err());

        let mut s = ScenarioSpec::paper();
        s.trip.overnight_cities = vec!["Atlantis".to_string()];
        assert!(s.validate().is_err());

        let mut s = ScenarioSpec::paper();
        s.operators[0].slot = "sprint".to_string();
        assert!(s.validate().is_err());

        let mut s = ScenarioSpec::paper();
        s.fleet.cloud_by_tz = vec![0];
        assert!(s.validate().is_err());

        let mut s = ScenarioSpec::paper();
        s.operators[1].slot = s.operators[0].slot.clone();
        assert!(s.validate().is_err());
    }

    #[test]
    fn non_paper_worlds_build() {
        for spec in [ScenarioSpec::rail_corridor(), ScenarioSpec::metro_loop()] {
            let world = spec.build(42);
            assert!(!world.plan.days().is_empty(), "{}", spec.name);
            assert!(!world.ops.is_empty(), "{}", spec.name);
        }
    }

    #[test]
    fn intern_deduplicates() {
        let a = intern("scenario-intern-test");
        let b = intern("scenario-intern-test");
        assert!(std::ptr::eq(a, b));
    }
}
