//! Non-paper registry scenarios must run end to end: campaign →
//! analysis index → full report, without panics, with every per-operator
//! artifact sized to the scenario's own panel.

use wheels_analysis::{report, AnalysisIndex};
use wheels_bench::{run_scenario_supervised, FaultOpts, ReproScale};
use wheels_campaign::stats::Table1;
use wheels_campaign::ScenarioSpec;

#[test]
fn non_paper_scenarios_run_end_to_end() {
    for spec in ScenarioSpec::registry() {
        if spec.name == "paper" {
            continue;
        }
        let (campaign, outcome) =
            run_scenario_supervised(&spec, ReproScale::Smoke, 7, 1, FaultOpts::default(), None)
                .expect("scenario campaign completes");
        let db = outcome.db;
        assert!(!db.records.is_empty(), "{}: no records", spec.name);

        let ops = campaign.ops().to_vec();
        assert_eq!(ops.len(), spec.operators.len(), "{}", spec.name);

        let t1 = Table1::compute_for(&db, campaign.plan().route(), &ops);
        assert_eq!(t1.unique_cells.len(), ops.len());
        assert!(t1.unique_cells.iter().all(|&c| c > 0), "{}", spec.name);

        let ix = AnalysisIndex::build_for(&db, ops.clone());
        assert_eq!(ix.ops(), &ops[..]);
        let doc = report::generate_jobs(&ix, campaign.plan().route(), 2);
        for op in &ops {
            assert!(doc.contains(op.label()), "{}: {} missing", spec.name, op.label());
        }
    }
}
