//! Fig. 11: handover statistics — HOs per mile and HO duration.

use wheels_ran::operator::Operator;
use wheels_ran::Direction;
use wheels_xcal::database::TestKind;

use crate::ecdf::Ecdf;
use crate::index::AnalysisIndex;
use crate::render::{cdf_header, cdf_row};

/// Per (operator, direction): HOs/mile and HO-duration distributions.
#[derive(Debug, Clone)]
pub struct HandoverStats {
    /// (op, dir, HOs-per-mile ECDF over tests).
    pub per_mile: Vec<(Operator, Direction, Ecdf)>,
    /// (op, dir, HO duration ECDF in ms).
    pub duration_ms: Vec<(Operator, Direction, Ecdf)>,
}

/// Compute Fig. 11 from the index's record partitions.
pub fn compute(ix: &AnalysisIndex<'_>) -> HandoverStats {
    let mut per_mile = Vec::new();
    let mut duration_ms = Vec::new();
    for &op in ix.ops() {
        for dir in Direction::BOTH {
            let kind = match dir {
                Direction::Downlink => TestKind::ThroughputDl,
                Direction::Uplink => TestKind::ThroughputUl,
            };
            let records: Vec<_> = ix.records(op, kind, false).collect();
            per_mile.push((
                op,
                dir,
                Ecdf::new(records.iter().filter_map(|r| r.handovers_per_mile())),
            ));
            duration_ms.push((
                op,
                dir,
                Ecdf::new(
                    records
                        .iter()
                        .flat_map(|r| r.handovers.iter().map(|h| h.duration_ms)),
                ),
            ));
        }
    }
    HandoverStats {
        per_mile,
        duration_ms,
    }
}

impl HandoverStats {
    /// HOs/mile for one (op, dir).
    pub fn per_mile_for(&self, op: Operator, dir: Direction) -> &Ecdf {
        &self
            .per_mile
            .iter()
            .find(|(o, d, _)| *o == op && *d == dir)
            .expect("all combos computed")
            .2
    }

    /// HO durations for one (op, dir).
    pub fn duration_for(&self, op: Operator, dir: Direction) -> &Ecdf {
        &self
            .duration_ms
            .iter()
            .find(|(o, d, _)| *o == op && *d == dir)
            .expect("all combos computed")
            .2
    }

    /// Render the figure.
    pub fn render(&self) -> String {
        let mut out = cdf_header("Fig. 11a — handovers per mile");
        out.push('\n');
        for (op, dir, e) in &self.per_mile {
            out.push_str(&cdf_row(&format!("{} {}", op.code(), dir.label()), e));
            out.push('\n');
        }
        out.push_str(&cdf_header("Fig. 11b — handover duration (ms)"));
        out.push('\n');
        for (op, dir, e) in &self.duration_ms {
            out.push_str(&cdf_row(&format!("{} {}", op.code(), dir.label()), e));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix as small_ix;

    #[test]
    fn median_hos_per_mile_low() {
        // Fig. 11a: medians 1-3 per mile, 75th percentiles ≤ ~6.
        let f = compute(small_ix());
        for op in Operator::ALL {
            for dir in Direction::BOTH {
                let e = f.per_mile_for(op, dir);
                if e.len() < 20 {
                    continue;
                }
                let med = e.median();
                assert!((0.0..7.0).contains(&med), "{op} {}: median {med}", dir.label());
            }
        }
    }

    #[test]
    fn extremes_can_exceed_ten_per_mile() {
        // Fig. 11a: "more than 20 HOs per mile in extreme cases" — at
        // reduced scale we just require a heavy tail.
        let f = compute(small_ix());
        let max = Operator::ALL
            .iter()
            .map(|&op| f.per_mile_for(op, Direction::Downlink).max())
            .fold(0.0, f64::max);
        assert!(max > 4.0, "max HOs/mile {max}");
    }

    #[test]
    fn durations_match_fig11b() {
        // Medians ≈ 49-76 ms; T-Mobile slowest.
        let f = compute(small_ix());
        for op in Operator::ALL {
            let e = f.duration_for(op, Direction::Downlink);
            if e.len() < 20 {
                continue;
            }
            let med = e.median();
            assert!((35.0..100.0).contains(&med), "{op}: duration median {med}");
        }
        let t = f.duration_for(Operator::TMobile, Direction::Downlink);
        let v = f.duration_for(Operator::Verizon, Direction::Downlink);
        if t.len() > 30 && v.len() > 30 {
            assert!(t.median() > v.median(), "T {} vs V {}", t.median(), v.median());
        }
    }
}
