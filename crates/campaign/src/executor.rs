//! Deterministic parallel campaign execution.
//!
//! The campaign is split into independent [`WorkUnit`]s — one per
//! `(operator, drive day)`, `(operator, static site)`, and passive-logger
//! operator. Every random stream a unit consumes is derived from the
//! campaign seed and the unit's key (see [`wheels_netsim::rng`]), so a
//! unit's output is a pure function of `(config, unit)` and is identical
//! whether units run on one thread or many. Workers pull unit indexes
//! from a shared atomic counter (dynamic load balancing), write each
//! [`Shard`] into its unit's slot, and [`merge_shards`] folds the slots
//! back together in canonical unit order — which makes `run()` and
//! `run_jobs(n)` byte-identical for every `n`.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use wheels_ran::operator::Operator;
use wheels_xcal::database::{ConsolidatedDb, TestRecord};
use wheels_xcal::handover_logger::PassiveLogger;

use crate::runner::Campaign;
use crate::static_tests::static_sites;

/// One independent slice of the campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkUnit {
    /// One operator's round-robin test cycles over one drive day.
    Drive {
        /// The phone's operator.
        op: Operator,
        /// Index into the drive plan's days.
        day: usize,
    },
    /// One operator's static city baseline at one site.
    Static {
        /// The phone's operator.
        op: Operator,
        /// Route odometer of the site, meters.
        site_od: f64,
    },
    /// One operator's all-day passive handover logger.
    Passive {
        /// The logger phone's operator.
        op: Operator,
    },
}

/// The output of one [`WorkUnit`]: records carry shard-local ids
/// (`0..n` in generation order) until [`merge_shards`] reassigns them.
#[derive(Debug, Default)]
pub struct Shard {
    /// Test records produced by the unit.
    pub records: Vec<TestRecord>,
    /// Passive logger output (passive units only).
    pub passive: Option<(Operator, PassiveLogger)>,
}

impl Campaign {
    /// The canonical unit schedule: drive units (operator-major,
    /// day-minor), then static sites, then passive loggers. Merge order —
    /// and therefore the exported dataset — is defined by this sequence,
    /// never by worker completion order.
    pub fn plan_units(&self) -> Vec<WorkUnit> {
        let mut units = Vec::new();
        for op in Operator::ALL {
            for day in 0..self.plan.days().len() {
                units.push(WorkUnit::Drive { op, day });
            }
        }
        if self.cfg.run_static {
            for op in Operator::ALL {
                let db = self.db_for(op);
                for (_city, site_od, _tech) in static_sites(&db, self.plan.route()) {
                    units.push(WorkUnit::Static { op, site_od });
                }
            }
        }
        if self.cfg.run_passive {
            for op in Operator::ALL {
                units.push(WorkUnit::Passive { op });
            }
        }
        units
    }

    /// Run `units`, returning one shard per unit in unit order.
    ///
    /// `jobs <= 1` runs inline on the caller's thread; otherwise a scoped
    /// pool of `jobs` workers drains a shared index queue, so a slow unit
    /// (a full drive day) never serializes the rest of the schedule.
    pub(crate) fn execute_units(&self, units: &[WorkUnit], jobs: usize) -> Vec<Shard> {
        if jobs <= 1 || units.len() <= 1 {
            return units.iter().map(|u| self.run_unit(u)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Shard>>> =
            units.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(units.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(unit) = units.get(i) else { break };
                    *slots[i].lock() = Some(self.run_unit(unit));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every unit ran to completion"))
            .collect()
    }
}

/// Fold per-unit shards (in canonical unit order) into one database.
///
/// Records are stably sorted by start time — ties keep unit order, so the
/// result is deterministic — and ids are reassigned `0..n` in final order.
/// Passive logs keep their unit (operator) order.
pub fn merge_shards(shards: Vec<Shard>) -> ConsolidatedDb {
    let mut records: Vec<TestRecord> = Vec::with_capacity(shards.iter().map(|s| s.records.len()).sum());
    let mut passive = Vec::new();
    for shard in shards {
        records.extend(shard.records);
        if let Some(p) = shard.passive {
            passive.push(p);
        }
    }
    records.sort_by(|a, b| a.start_s.partial_cmp(&b.start_s).expect("times are finite"));
    for (i, r) in records.iter_mut().enumerate() {
        r.id = i as u32;
    }
    ConsolidatedDb { records, passive }
}
