//! Per-(operator, technology, direction) link configurations.
//!
//! These encode each carrier's spectrum holdings and device capabilities as
//! of August 2022 in *effective* terms: the per-component-carrier bandwidth
//! list (TDD uplink shares already folded in), sustained MIMO layers on the
//! move, and L1/L2 overhead. They are calibrated so that peak rates match
//! the static maxima the paper reports in Fig. 3a (e.g. Verizon mmWave DL
//! 3.4 Gbps, AT&T mmWave DL 2.0 Gbps, T-Mobile midband DL 0.8 Gbps, Verizon
//! mmWave UL 350 Mbps) — see DESIGN.md §4.

use std::sync::OnceLock;

use wheels_radio::band::Technology;
use wheels_radio::capacity::CapacityModel;

use crate::operator::Operator;
use crate::Direction;

/// Effective link configuration for one (operator, technology, direction).
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Bandwidth of each aggregatable component carrier, MHz, in activation
    /// order (primary first). `len()` is the max CA order; the paper's "CA"
    /// KPI is how many of these are active.
    pub cc_mhz: Vec<f64>,
    /// Effective spatial layers sustained while driving.
    pub layers: f64,
    /// L1/L2 overhead factor.
    pub overhead: f64,
    /// Effective noise-plus-interference floor for SINR computation, dBm
    /// (per-RE, matching the RSRP convention).
    pub noise_eff_dbm: f64,
}

impl LinkConfig {
    /// Max number of aggregated carriers.
    pub fn max_cc(&self) -> usize {
        self.cc_mhz.len()
    }

    /// Total bandwidth with `cc` carriers active, MHz.
    pub fn bandwidth_mhz(&self, cc: usize) -> f64 {
        self.cc_mhz.iter().take(cc.max(1)).sum()
    }

    /// Capacity model with `cc` carriers active.
    pub fn capacity_model(&self, cc: usize) -> CapacityModel {
        CapacityModel::new(self.bandwidth_mhz(cc), self.layers, self.overhead)
    }

    /// Wideband SINR for a given RSRP under this configuration, dB.
    pub fn sinr_db(&self, rsrp_dbm: f64) -> f64 {
        rsrp_dbm - self.noise_eff_dbm
    }
}

/// Look up the link configuration for an operator/technology/direction.
pub fn link_config(op: Operator, tech: Technology, dir: Direction) -> LinkConfig {
    use Direction::*;
    use Operator::*;
    use Technology::*;
    let (cc_mhz, layers, overhead, noise): (&[f64], f64, f64, f64) = match (op, tech, dir) {
        // ----- Verizon ------------------------------------------------
        (Verizon, Lte, Downlink) => (&[20.0], 2.0, 0.65, -110.0),
        (Verizon, Lte, Uplink) => (&[20.0], 1.0, 0.60, -112.0),
        (Verizon, LteA, Downlink) => (&[20.0, 20.0, 10.0], 2.0, 0.60, -110.0),
        // Verizon rarely aggregates carriers in the uplink (§5.5 "CA").
        (Verizon, LteA, Uplink) => (&[20.0], 1.0, 0.65, -112.0),
        (Verizon, Nr5gLow, Downlink) => (&[20.0, 20.0], 2.0, 0.60, -112.0),
        (Verizon, Nr5gLow, Uplink) => (&[20.0, 10.0], 1.0, 0.60, -113.0),
        (Verizon, Nr5gMid, Downlink) => (&[60.0, 20.0], 2.0, 0.55, -105.0),
        (Verizon, Nr5gMid, Uplink) => (&[15.0, 5.0], 1.0, 0.70, -107.0),
        (Verizon, Nr5gMmWave, Downlink) => (
            &[100.0, 100.0, 100.0, 100.0, 100.0, 100.0, 100.0, 100.0],
            1.0,
            0.60,
            -95.0,
        ),
        (Verizon, Nr5gMmWave, Uplink) => (&[25.0, 25.0], 1.0, 0.95, -95.0),
        // ----- T-Mobile -----------------------------------------------
        (TMobile, Lte, Downlink) => (&[20.0], 2.0, 0.65, -110.0),
        (TMobile, Lte, Uplink) => (&[20.0], 1.0, 0.60, -112.0),
        (TMobile, LteA, Downlink) => (&[20.0, 20.0], 2.0, 0.70, -110.0),
        (TMobile, LteA, Uplink) => (&[20.0, 5.0], 1.0, 0.60, -112.0),
        (TMobile, Nr5gLow, Downlink) => (&[20.0, 20.0], 2.0, 0.65, -112.0),
        (TMobile, Nr5gLow, Uplink) => (&[20.0, 10.0], 1.0, 0.65, -113.0),
        // n41 100 MHz + LTE anchor; the paper's standout midband service.
        (TMobile, Nr5gMid, Downlink) => (&[100.0, 20.0], 2.0, 0.50, -105.0),
        // UL: TDD share folded in; one NR carrier plus a thin LTE anchor —
        // the anchor is why T-Mobile's UL CA count barely moves throughput
        // (§5.5 "CA").
        (TMobile, Nr5gMid, Uplink) => (&[25.0, 5.0], 1.0, 0.75, -107.0),
        (TMobile, Nr5gMmWave, Downlink) => (&[100.0, 100.0], 1.0, 0.60, -95.0),
        // T-Mobile mmWave UL maxes *below* its midband UL (§5.2 obs. (2)).
        (TMobile, Nr5gMmWave, Uplink) => (&[12.0, 12.0], 1.0, 0.60, -95.0),
        // ----- AT&T ---------------------------------------------------
        (Att, Lte, Downlink) => (&[20.0], 2.0, 0.65, -110.0),
        (Att, Lte, Uplink) => (&[20.0], 1.0, 0.55, -112.0),
        // AT&T's LTE-A is its workhorse: heavy CA (§5.5: CA has the highest
        // DL correlation for AT&T).
        (Att, LteA, Downlink) => (&[20.0, 20.0, 20.0, 10.0], 2.0, 0.60, -110.0),
        (Att, LteA, Uplink) => (&[20.0, 10.0], 1.0, 0.55, -112.0),
        (Att, Nr5gLow, Downlink) => (&[20.0, 20.0], 2.0, 0.60, -112.0),
        (Att, Nr5gLow, Uplink) => (&[20.0, 10.0], 1.0, 0.55, -113.0),
        (Att, Nr5gMid, Downlink) => (&[40.0, 20.0], 2.0, 0.55, -105.0),
        (Att, Nr5gMid, Uplink) => (&[10.0, 5.0], 1.0, 0.60, -107.0),
        (Att, Nr5gMmWave, Downlink) => (&[100.0, 100.0, 100.0, 100.0], 1.0, 0.55, -95.0),
        (Att, Nr5gMmWave, Uplink) => (&[25.0, 25.0], 1.0, 0.60, -95.0),
    };
    LinkConfig {
        cc_mhz: cc_mhz.to_vec(),
        layers,
        overhead,
        noise_eff_dbm: noise,
    }
}

/// All 30 (operator, technology, direction) configurations plus their
/// linear noise floors, materialized once. [`UeRadio::step`] looks two
/// configs up per tick, so the hot path must not re-allocate `cc_mhz` or
/// redo the dB→linear conversion every time.
///
/// [`UeRadio::step`]: crate::ue::UeRadio::step
static CONFIG_TABLE: OnceLock<Vec<(LinkConfig, f64)>> = OnceLock::new();

fn config_table() -> &'static [(LinkConfig, f64)] {
    CONFIG_TABLE.get_or_init(|| {
        let mut v = Vec::with_capacity(30);
        for op in Operator::ALL {
            for tech in Technology::ALL {
                for dir in Direction::BOTH {
                    let cfg = link_config(op, tech, dir);
                    let noise_lin = 10f64.powf(cfg.noise_eff_dbm / 10.0);
                    v.push((cfg, noise_lin));
                }
            }
        }
        v
    })
}

fn config_index(op: Operator, tech: Technology, dir: Direction) -> usize {
    (op as usize * 5 + crate::cell::tech_index(tech)) * 2 + dir as usize
}

/// Borrow the precomputed configuration for an operator/technology/
/// direction — same values as [`link_config`], no per-call allocation.
pub fn link_config_ref(op: Operator, tech: Technology, dir: Direction) -> &'static LinkConfig {
    &config_table()[config_index(op, tech, dir)].0
}

/// The linear noise-plus-interference floor `10^(noise_eff_dbm/10)` for a
/// configuration, precomputed with the exact expression the SINR path uses.
pub fn link_noise_lin(op: Operator, tech: Technology, dir: Direction) -> f64 {
    config_table()[config_index(op, tech, dir)].1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peak_mbps(op: Operator, tech: Technology, dir: Direction) -> f64 {
        let c = link_config(op, tech, dir);
        c.capacity_model(c.max_cc()).capacity(30.0, 0.0, 1.0).mbps
    }

    #[test]
    fn verizon_mmwave_dl_peak_near_3_5_gbps() {
        let p = peak_mbps(Operator::Verizon, Technology::Nr5gMmWave, Direction::Downlink);
        assert!((3_000.0..4_200.0).contains(&p), "{p}");
    }

    #[test]
    fn att_mmwave_dl_peak_near_2_gbps() {
        let p = peak_mbps(Operator::Att, Technology::Nr5gMmWave, Direction::Downlink);
        assert!((1_500.0..2_500.0).contains(&p), "{p}");
    }

    #[test]
    fn tmobile_midband_dl_peak_near_900_mbps() {
        let p = peak_mbps(Operator::TMobile, Technology::Nr5gMid, Direction::Downlink);
        assert!((700.0..1_100.0).contains(&p), "{p}");
    }

    #[test]
    fn verizon_mmwave_ul_peak_near_350_mbps() {
        let p = peak_mbps(Operator::Verizon, Technology::Nr5gMmWave, Direction::Uplink);
        assert!((280.0..430.0).contains(&p), "{p}");
    }

    #[test]
    fn tmobile_mmwave_ul_below_midband_ul() {
        let mm = peak_mbps(Operator::TMobile, Technology::Nr5gMmWave, Direction::Uplink);
        let mid = peak_mbps(Operator::TMobile, Technology::Nr5gMid, Direction::Uplink);
        assert!(mm < mid, "mmWave {mm} vs mid {mid}");
    }

    #[test]
    fn uplink_order_of_magnitude_below_downlink() {
        for op in Operator::ALL {
            let dl = peak_mbps(op, Technology::Nr5gMmWave, Direction::Downlink);
            let ul = peak_mbps(op, Technology::Nr5gMmWave, Direction::Uplink);
            assert!(dl / ul > 4.0, "{op}: dl {dl} ul {ul}");
        }
    }

    #[test]
    fn verizon_ul_ltea_never_aggregates() {
        assert_eq!(
            link_config(Operator::Verizon, Technology::LteA, Direction::Uplink).max_cc(),
            1
        );
    }

    #[test]
    fn att_ltea_dl_aggregates_most() {
        let a = link_config(Operator::Att, Technology::LteA, Direction::Downlink).max_cc();
        let v = link_config(Operator::Verizon, Technology::LteA, Direction::Downlink).max_cc();
        let t = link_config(Operator::TMobile, Technology::LteA, Direction::Downlink).max_cc();
        assert!(a > v && a > t);
    }

    #[test]
    fn bandwidth_accumulates_with_cc() {
        let c = link_config(Operator::Att, Technology::LteA, Direction::Downlink);
        assert!(c.bandwidth_mhz(1) < c.bandwidth_mhz(2));
        assert_eq!(c.bandwidth_mhz(0), c.bandwidth_mhz(1), "at least 1 CC");
        assert_eq!(c.bandwidth_mhz(99), c.bandwidth_mhz(c.max_cc()));
    }

    #[test]
    fn sinr_from_rsrp() {
        let c = link_config(Operator::Verizon, Technology::Lte, Direction::Downlink);
        assert!((c.sinr_db(-90.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn every_combination_defined_and_sane() {
        for op in Operator::ALL {
            for tech in Technology::ALL {
                for dir in Direction::BOTH {
                    let c = link_config(op, tech, dir);
                    assert!(!c.cc_mhz.is_empty());
                    assert!(c.layers >= 1.0);
                    assert!((0.0..=1.0).contains(&c.overhead));
                    assert!((-130.0..-80.0).contains(&c.noise_eff_dbm));
                }
            }
        }
    }

    #[test]
    fn static_table_matches_constructor() {
        for op in Operator::ALL {
            for tech in Technology::ALL {
                for dir in Direction::BOTH {
                    let fresh = link_config(op, tech, dir);
                    let cached = link_config_ref(op, tech, dir);
                    assert_eq!(fresh.cc_mhz, cached.cc_mhz);
                    assert_eq!(fresh.layers.to_bits(), cached.layers.to_bits());
                    assert_eq!(fresh.overhead.to_bits(), cached.overhead.to_bits());
                    assert_eq!(
                        fresh.noise_eff_dbm.to_bits(),
                        cached.noise_eff_dbm.to_bits()
                    );
                    assert_eq!(
                        link_noise_lin(op, tech, dir).to_bits(),
                        10f64.powf(fresh.noise_eff_dbm / 10.0).to_bits()
                    );
                }
            }
        }
    }
}
