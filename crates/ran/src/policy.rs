//! Operator service-elevation (upgrade) policies.
//!
//! A central methodological finding of the paper (§4.1 / challenge C3):
//! *"operators often deploy complex policies in deciding whether to elevate
//! a UE's service from LTE to 5G ... UEs often fall back to LTE or do not
//! switch to 5G in the absence of heavy traffic"*, and (§4.2 / Fig. 2b)
//! *"operators are more likely to upgrade a UE's service to high-speed 5G in
//! the presence of backlogged downlink traffic, while they tend to prefer
//! 5G-low or 4G for backlogged uplink traffic."*
//!
//! [`UpgradePolicy`] encodes this as per-(operator, target-technology,
//! demand) promotion probabilities, evaluated at sticky intervals. The
//! passive handover-logger (38-byte pings every 200 ms) presents
//! [`TrafficDemand::Ping`], the throughput tests present
//! [`TrafficDemand::Backlog`] — the gap between the two is exactly what
//! makes Fig. 1's two coverage views disagree.

use wheels_radio::band::Technology;

use crate::operator::Operator;
use crate::Direction;

/// What the UE's traffic looks like to the network's elevation logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficDemand {
    /// Radio kept alive but effectively no traffic.
    Idle,
    /// Light ICMP keep-alive traffic (the handover-logger, RTT tests).
    Ping,
    /// A saturating transfer in one direction (throughput tests, app
    /// uploads/downloads).
    Backlog(Direction),
}

/// Promotion-probability policy. Probabilities are per *policy evaluation*
/// (roughly every 8–15 s), not per tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct UpgradePolicy;

impl UpgradePolicy {
    /// Probability that `op` elevates a UE to `target` under `demand`,
    /// given the layer is available at this location.
    ///
    /// LTE/LTE-A are anchors, not elevation targets: they return 1.0
    /// (always allowed).
    pub fn promotion_prob(
        &self,
        op: Operator,
        target: Technology,
        demand: TrafficDemand,
    ) -> f64 {
        use Operator::*;
        use Technology::*;
        match target {
            Lte | LteA => 1.0,
            Nr5gLow => match demand {
                TrafficDemand::Idle => match op {
                    Verizon => 0.15,
                    TMobile => 0.40,
                    // Fig. 1d: the AT&T handover-logger saw *only*
                    // LTE/LTE-A across the whole country.
                    Att => 0.01,
                },
                TrafficDemand::Ping => match op {
                    Verizon => 0.25,
                    TMobile => 0.55,
                    Att => 0.02,
                },
                TrafficDemand::Backlog(Direction::Downlink) => match op {
                    Verizon => 0.70,
                    TMobile => 0.85,
                    Att => 0.80,
                },
                TrafficDemand::Backlog(Direction::Uplink) => match op {
                    Verizon => 0.60,
                    TMobile => 0.80,
                    Att => 0.75,
                },
            },
            Nr5gMid => match demand {
                TrafficDemand::Idle => match op {
                    Verizon => 0.08,
                    TMobile => 0.25,
                    Att => 0.02,
                },
                TrafficDemand::Ping => match op {
                    Verizon => 0.15,
                    TMobile => 0.35,
                    Att => 0.05,
                },
                TrafficDemand::Backlog(Direction::Downlink) => match op {
                    Verizon => 0.85,
                    TMobile => 0.88,
                    Att => 0.70,
                },
                TrafficDemand::Backlog(Direction::Uplink) => match op {
                    Verizon => 0.45,
                    TMobile => 0.65,
                    Att => 0.35,
                },
            },
            Nr5gMmWave => match demand {
                // §5.5 / Fig. 8: essentially no mmWave under ping traffic
                // except when (nearly) stationary — the caller gates this
                // further on speed.
                TrafficDemand::Idle => 0.01,
                TrafficDemand::Ping => match op {
                    Verizon => 0.06,
                    TMobile => 0.02,
                    Att => 0.04,
                },
                TrafficDemand::Backlog(Direction::Downlink) => match op {
                    Verizon => 0.85,
                    TMobile => 0.50,
                    Att => 0.70,
                },
                TrafficDemand::Backlog(Direction::Uplink) => match op {
                    Verizon => 0.55,
                    TMobile => 0.45,
                    Att => 0.35,
                },
            },
        }
    }

    /// Elevation preference order: fastest first.
    pub const PREFERENCE: [Technology; 3] = [
        Technology::Nr5gMmWave,
        Technology::Nr5gMid,
        Technology::Nr5gLow,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_always_allowed() {
        let p = UpgradePolicy;
        for op in Operator::ALL {
            assert_eq!(p.promotion_prob(op, Technology::Lte, TrafficDemand::Idle), 1.0);
            assert_eq!(
                p.promotion_prob(op, Technology::LteA, TrafficDemand::Ping),
                1.0
            );
        }
    }

    #[test]
    fn dl_backlog_promotes_high_speed_more_than_ul() {
        // Fig. 2b: high-speed 5G coverage higher for DL for all carriers.
        let p = UpgradePolicy;
        for op in Operator::ALL {
            for tech in [Technology::Nr5gMid, Technology::Nr5gMmWave] {
                let dl = p.promotion_prob(op, tech, TrafficDemand::Backlog(Direction::Downlink));
                let ul = p.promotion_prob(op, tech, TrafficDemand::Backlog(Direction::Uplink));
                assert!(dl > ul, "{op} {tech}");
            }
        }
    }

    #[test]
    fn ping_promotes_far_less_than_backlog() {
        // Fig. 1: passive logging sees mostly LTE.
        let p = UpgradePolicy;
        for op in Operator::ALL {
            for tech in UpgradePolicy::PREFERENCE {
                let ping = p.promotion_prob(op, tech, TrafficDemand::Ping);
                let dl = p.promotion_prob(op, tech, TrafficDemand::Backlog(Direction::Downlink));
                assert!(dl > ping, "{op} {tech}: ping {ping} dl {dl}");
                if tech.is_high_speed() {
                    assert!(dl >= 2.0 * ping, "{op} {tech}: ping {ping} dl {dl}");
                }
            }
        }
    }

    #[test]
    fn att_passive_is_essentially_lte_only() {
        let p = UpgradePolicy;
        for tech in UpgradePolicy::PREFERENCE {
            assert!(p.promotion_prob(Operator::Att, tech, TrafficDemand::Ping) <= 0.05);
        }
    }

    #[test]
    fn probabilities_are_probabilities() {
        let p = UpgradePolicy;
        for op in Operator::ALL {
            for tech in Technology::ALL {
                for demand in [
                    TrafficDemand::Idle,
                    TrafficDemand::Ping,
                    TrafficDemand::Backlog(Direction::Downlink),
                    TrafficDemand::Backlog(Direction::Uplink),
                ] {
                    let pr = p.promotion_prob(op, tech, demand);
                    assert!((0.0..=1.0).contains(&pr));
                }
            }
        }
    }
}
