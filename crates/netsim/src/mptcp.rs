//! Multipath TCP over multiple operators — the paper's recommendation 2.
//!
//! §5.4 / §8: *"performance under driving can benefit significantly from
//! multi-connectivity solutions, e.g., over Multipath TCP, that can
//! aggregate links from multiple operators"* — the RAVEN/CableLabs line of
//! work. This module implements that future-work feature: a multipath
//! flow with one congestion-controlled subflow per operator and two
//! schedulers:
//!
//! * [`MptcpMode::Aggregate`] — all subflows backlogged simultaneously
//!   (bandwidth aggregation, the file-transfer use case);
//! * [`MptcpMode::BestPath`] — only the currently-best subflow carries
//!   traffic, re-evaluated continuously (the latency-sensitive use case:
//!   avoids blocking on a stalled path).

use crate::cubic::Cubic;
use crate::tcp::{FluidTcp, TickOutcome};

/// Scheduler used by a [`MultipathFlow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MptcpMode {
    /// Saturate every subflow; aggregate goodput is the sum.
    Aggregate,
    /// Send on the one subflow with the highest smoothed delivery rate.
    BestPath,
}

/// Result of one multipath tick.
#[derive(Debug, Clone, Copy)]
pub struct MptcpTick {
    /// Total bytes delivered across subflows this tick.
    pub delivered_bytes: f64,
    /// Lowest subflow RTT this tick, seconds.
    pub min_rtt_s: f64,
    /// Index of the subflow that delivered the most this tick.
    pub best_path: usize,
}

/// A multipath flow: one [`FluidTcp`] subflow per path (per operator).
pub struct MultipathFlow {
    subflows: Vec<FluidTcp>,
    mode: MptcpMode,
    /// Smoothed per-path delivery rate, bytes/s (BestPath scheduler state).
    rate_est: Vec<f64>,
    active: usize,
}

impl MultipathFlow {
    /// Create a flow with `paths` CUBIC subflows.
    ///
    /// # Panics
    /// Panics if `paths == 0`.
    pub fn new(paths: usize, mode: MptcpMode) -> Self {
        assert!(paths > 0, "a multipath flow needs at least one path");
        MultipathFlow {
            subflows: (0..paths).map(|_| FluidTcp::new(Box::new(Cubic::new()))).collect(),
            mode,
            rate_est: vec![0.0; paths],
            active: 0,
        }
    }

    /// Number of subflows.
    pub fn paths(&self) -> usize {
        self.subflows.len()
    }

    /// Advance all subflows by `dt_s`. `caps_mbps[i]` and `rtts_s[i]` are
    /// path i's capacity and base RTT.
    ///
    /// # Panics
    /// Panics if the slice lengths don't match the path count.
    pub fn tick(&mut self, now_s: f64, dt_s: f64, caps_mbps: &[f64], rtts_s: &[f64]) -> MptcpTick {
        assert_eq!(caps_mbps.len(), self.subflows.len());
        assert_eq!(rtts_s.len(), self.subflows.len());
        let mut delivered = 0.0;
        let mut min_rtt = f64::INFINITY;
        let mut best = 0usize;
        let mut best_bytes = -1.0f64;
        match self.mode {
            MptcpMode::Aggregate => {
                for (i, f) in self.subflows.iter_mut().enumerate() {
                    let out: TickOutcome = f.tick(now_s, dt_s, caps_mbps[i], rtts_s[i]);
                    delivered += out.delivered_bytes;
                    min_rtt = min_rtt.min(out.rtt_s);
                    if out.delivered_bytes > best_bytes {
                        best_bytes = out.delivered_bytes;
                        best = i;
                    }
                }
            }
            MptcpMode::BestPath => {
                // Update estimates with tiny probe traffic on idle paths
                // (modelled as rate decay plus the path's raw capacity
                // signal), full traffic on the active path.
                for (i, f) in self.subflows.iter_mut().enumerate() {
                    if i == self.active {
                        let out = f.tick(now_s, dt_s, caps_mbps[i], rtts_s[i]);
                        delivered += out.delivered_bytes;
                        min_rtt = min_rtt.min(out.rtt_s);
                        self.rate_est[i] =
                            0.9 * self.rate_est[i] + 0.1 * (out.delivered_bytes / dt_s);
                    } else {
                        // Thin probes observe capacity without moving data.
                        self.rate_est[i] = 0.95 * self.rate_est[i]
                            + 0.05 * crate::mbps_to_bps(caps_mbps[i]);
                    }
                }
                best = self
                    .rate_est
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                // Switch only on a clear (20 %) advantage to avoid flapping.
                if best != self.active
                    && self.rate_est[best] > 1.2 * self.rate_est[self.active].max(1.0)
                {
                    self.active = best;
                }
                best = self.active;
            }
        }
        MptcpTick {
            delivered_bytes: delivered,
            min_rtt_s: if min_rtt.is_finite() { min_rtt } else { rtts_s[0] },
            best_path: best,
        }
    }

    /// Total bytes delivered across all subflows.
    pub fn total_delivered_bytes(&self) -> f64 {
        self.subflows.iter().map(|f| f.total_delivered_bytes()).sum()
    }
}

impl std::fmt::Debug for MultipathFlow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultipathFlow")
            .field("paths", &self.subflows.len())
            .field("mode", &self.mode)
            .field("active", &self.active)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mode: MptcpMode, caps: impl Fn(f64) -> [f64; 3], secs: f64) -> f64 {
        let mut flow = MultipathFlow::new(3, mode);
        let dt = 0.02;
        let mut t = 0.0;
        while t < secs {
            let c = caps(t);
            flow.tick(t, dt, &c, &[0.05, 0.06, 0.055]);
            t += dt;
        }
        crate::bps_to_mbps(flow.total_delivered_bytes() / secs)
    }

    #[test]
    fn aggregate_approaches_sum_of_paths() {
        let avg = run(MptcpMode::Aggregate, |_| [40.0, 25.0, 15.0], 30.0);
        assert!((62.0..81.0).contains(&avg), "{avg}");
    }

    #[test]
    fn aggregate_beats_every_single_path() {
        let agg = run(MptcpMode::Aggregate, |_| [40.0, 25.0, 15.0], 30.0);
        assert!(agg > 40.0, "{agg}");
    }

    #[test]
    fn best_path_tracks_the_winner() {
        // Paths alternate which one is good; best-path should stay near
        // the envelope (minus switching lag), far above the average path.
        let caps = |t: f64| {
            if ((t / 10.0) as u64).is_multiple_of(2) {
                [60.0, 3.0, 3.0]
            } else {
                [3.0, 60.0, 3.0]
            }
        };
        let best = run(MptcpMode::BestPath, caps, 60.0);
        assert!(best > 25.0, "{best}");
    }

    #[test]
    fn best_path_survives_a_dead_path() {
        // One path blacks out entirely; the flow must not stall.
        let caps = |t: f64| {
            if t > 5.0 {
                [0.0, 20.0, 10.0]
            } else {
                [50.0, 20.0, 10.0]
            }
        };
        let got = run(MptcpMode::BestPath, caps, 30.0);
        assert!(got > 10.0, "{got}");
    }

    #[test]
    fn single_path_mptcp_equals_plain_tcp() {
        let mut mp = MultipathFlow::new(1, MptcpMode::Aggregate);
        let mut tcp = FluidTcp::new(Box::new(Cubic::new()));
        let dt = 0.02;
        let mut t = 0.0;
        while t < 10.0 {
            mp.tick(t, dt, &[30.0], &[0.05]);
            tcp.tick(t, dt, 30.0, 0.05);
            t += dt;
        }
        let a = mp.total_delivered_bytes();
        let b = tcp.total_delivered_bytes();
        assert!((a - b).abs() < 1.0, "{a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn zero_paths_rejected() {
        let _ = MultipathFlow::new(0, MptcpMode::Aggregate);
    }

    #[test]
    #[should_panic]
    fn mismatched_caps_rejected() {
        let mut f = MultipathFlow::new(2, MptcpMode::Aggregate);
        f.tick(0.0, 0.02, &[10.0], &[0.05, 0.05]);
    }
}
