//! Table 4: configurations for the AR and CAV applications, verbatim.
//!
//! | | AR | CAV |
//! |---|---|---|
//! | Frames per second (FPS) | 30 | 10 |
//! | Frame size (raw) | 450 KB | 2000 KB |
//! | Frame size (compressed) | 50 KB | 38 KB |
//! | Frame compression time | 6.3 ms | 34.8 ms |
//! | Server inference time (A100) | 24.9 ms | 44.0 ms |
//! | Frame decompression time | 1.0 ms | 19.1 ms |
//! | Duration of a run | 20 s | 20 s |

use serde::{Deserialize, Serialize};

/// Configuration of one offloading app (one column of Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadConfig {
    /// Source frame rate, frames/second.
    pub fps: f64,
    /// Raw frame size, bytes.
    pub frame_raw_bytes: f64,
    /// Compressed frame size, bytes.
    pub frame_compressed_bytes: f64,
    /// Compression time, ms.
    pub compression_ms: f64,
    /// Server inference time on the A100, ms.
    pub inference_ms: f64,
    /// Decompression time (server side), ms.
    pub decompression_ms: f64,
    /// Duration of one run, seconds.
    pub run_s: f64,
}

impl OffloadConfig {
    /// Frame period, ms.
    pub fn frame_period_ms(&self) -> f64 {
        1_000.0 / self.fps
    }

    /// Bytes sent per frame given the compression setting.
    pub fn frame_bytes(&self, compressed: bool) -> f64 {
        if compressed {
            self.frame_compressed_bytes
        } else {
            self.frame_raw_bytes
        }
    }
}

/// The AR column of Table 4.
pub const AR_CONFIG: OffloadConfig = OffloadConfig {
    fps: 30.0,
    frame_raw_bytes: 450.0 * 1_024.0,
    frame_compressed_bytes: 50.0 * 1_024.0,
    compression_ms: 6.3,
    inference_ms: 24.9,
    decompression_ms: 1.0,
    run_s: 20.0,
};

/// The CAV column of Table 4.
pub const CAV_CONFIG: OffloadConfig = OffloadConfig {
    fps: 10.0,
    frame_raw_bytes: 2_000.0 * 1_024.0,
    frame_compressed_bytes: 38.0 * 1_024.0,
    compression_ms: 34.8,
    inference_ms: 44.0,
    decompression_ms: 19.1,
    run_s: 20.0,
};

/// Render Table 4 as the paper prints it.
pub fn render_table4() -> String {
    let (a, c) = (AR_CONFIG, CAV_CONFIG);
    format!(
        "{:<32}{:>10}{:>10}\n{:<32}{:>10}{:>10}\n{:<32}{:>9.0}KB{:>8.0}KB\n{:<32}{:>9.0}KB{:>8.0}KB\n{:<32}{:>8.1}ms{:>8.1}ms\n{:<32}{:>8.1}ms{:>8.1}ms\n{:<32}{:>8.1}ms{:>8.1}ms\n{:<32}{:>9.0}s{:>9.0}s\n",
        "", "AR", "CAV",
        "Frames per second (FPS)", a.fps, c.fps,
        "Frame size (raw)", a.frame_raw_bytes / 1_024.0, c.frame_raw_bytes / 1_024.0,
        "Frame size (compressed)", a.frame_compressed_bytes / 1_024.0, c.frame_compressed_bytes / 1_024.0,
        "Frame compression time", a.compression_ms, c.compression_ms,
        "Server inference time (A100)", a.inference_ms, c.inference_ms,
        "Frame decompression time", a.decompression_ms, c.decompression_ms,
        "Duration of a run", a.run_s, c.run_s,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values_verbatim() {
        assert_eq!(AR_CONFIG.fps, 30.0);
        assert_eq!(CAV_CONFIG.fps, 10.0);
        assert_eq!(AR_CONFIG.frame_raw_bytes, 460_800.0);
        assert_eq!(CAV_CONFIG.frame_raw_bytes, 2_048_000.0);
        assert_eq!(AR_CONFIG.compression_ms, 6.3);
        assert_eq!(CAV_CONFIG.inference_ms, 44.0);
        assert_eq!(CAV_CONFIG.decompression_ms, 19.1);
    }

    #[test]
    fn ar_frame_period_33ms() {
        assert!((AR_CONFIG.frame_period_ms() - 33.333).abs() < 0.01);
    }

    #[test]
    fn compression_shrinks_frames() {
        for c in [AR_CONFIG, CAV_CONFIG] {
            assert!(c.frame_bytes(true) < c.frame_bytes(false));
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let t = render_table4();
        assert!(t.contains("Frames per second"));
        assert!(t.contains("Server inference time"));
        assert!(t.contains("450KB") || t.contains("450 KB") || t.contains("  450KB"));
    }
}
