//! # wheels-analysis
//!
//! The analysis pipeline: every table and figure of *Performance of
//! Cellular Networks on the Wheels*, regenerated from a
//! [`wheels_xcal::ConsolidatedDb`] produced by `wheels-campaign`.
//!
//! Each `figures::figNN_*` / `figures::tableN_*` module exposes a
//! `compute(&db, ...)` returning a typed result plus a `render()` that
//! prints the same rows/series the paper reports. The `repro` binary in
//! `wheels-bench` drives them all and writes EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod ecdf;
pub mod figures;
pub mod index;
pub mod map;
pub mod render;
pub mod report;
pub mod stats;

pub use ecdf::Ecdf;
pub use index::AnalysisIndex;
pub use stats::{mean, pearson, percentile, std_dev};
