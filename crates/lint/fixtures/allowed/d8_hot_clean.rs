//! The D8-clean counterpart: hot paths write into caller-provided
//! buffers and fold in place; allocation happens once, in cold setup
//! code, where D8 does not look.

pub struct Cubic {
    w_max: f64,
    acked_total: f64,
}

pub fn evaluate_layer_span(rsrp_dbm: &[f64], scores: &mut [f64]) -> f64 {
    // In-place fold over a preallocated buffer: no allocating calls.
    let mut sum = 0.0;
    for (score, r) in scores.iter_mut().zip(rsrp_dbm) {
        *score = *r * 0.5 + 1.0;
        sum += *score;
    }
    sum
}

impl Cubic {
    pub fn on_ack(&mut self, acked_bytes: f64) {
        self.w_max = self.w_max.max(self.acked_total);
        self.acked_total += acked_bytes;
    }
}

/// Cold setup path: not in the registry, so it may allocate freely.
pub fn build_score_buffer(n_ticks: usize) -> Vec<f64> {
    let mut buf = Vec::new();
    buf.resize(n_ticks, 0.0);
    buf
}

/// A deliberate, justified hot-path allocation stays visible but
/// suppressed — the reason is mandatory.
pub fn records_fragment(records: &[u64]) -> String {
    // lint:allow(D8): one fragment header per export flush, not per tick
    format!("{{\"count\":{}}}", records.len())
}
