//! `#[cfg(test)]` regions are exempt from D2/D3/D4 (they never run in a
//! campaign), while D1/D5 still apply — a NaN panic in a test is a
//! probabilistic CI failure. The test module below therefore uses hash
//! maps and wall clocks freely but sorts with `total_cmp`.

pub fn production_code(v: &mut [f64]) {
    v.sort_by(f64::total_cmp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};
    use std::time::Instant;

    #[test]
    fn exercised() {
        let t0 = Instant::now();
        let mut m = HashMap::new();
        let mut s = HashSet::new();
        m.insert(1u8, 1u8);
        s.insert(1u8);
        let mut v = vec![2.0, 1.0];
        production_code(&mut v);
        assert!(v[0] <= v[1]);
        assert!(t0.elapsed().as_secs() < 60);
        let _ = rand::thread_rng();
    }
}
