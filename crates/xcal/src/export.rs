//! Dataset export.
//!
//! The paper publishes its dataset and scripts; we export the consolidated
//! database as JSON (full fidelity) and a compact CSV of throughput
//! samples for spreadsheet-style analysis.

use std::io::Write;

use crate::database::{ConsolidatedDb, TestRecord};

/// Serialize the full database to pretty JSON.
pub fn to_json(db: &ConsolidatedDb) -> serde_json::Result<String> {
    serde_json::to_string_pretty(db)
}

/// Deserialize a database from JSON.
pub fn from_json(s: &str) -> serde_json::Result<ConsolidatedDb> {
    serde_json::from_str(s)
}

/// CSV header for the throughput-sample export.
pub const CSV_HEADER: &str =
    "test_id,op,kind,static,time_s,tput_mbps,tech,rsrp_dbm,mcs,bler,ca,speed_mph,timezone,region,handovers";

/// Write all throughput samples as CSV rows.
pub fn write_tput_csv<W: Write>(db: &ConsolidatedDb, mut w: W) -> std::io::Result<()> {
    writeln!(w, "{CSV_HEADER}")?;
    for r in &db.records {
        write_record_rows(r, &mut w)?;
    }
    Ok(())
}

fn write_record_rows<W: Write>(r: &TestRecord, w: &mut W) -> std::io::Result<()> {
    for k in &r.kpi {
        let Some(tput) = k.tput_mbps else { continue };
        writeln!(
            w,
            "{},{},{},{},{:.3},{:.4},{},{:.1},{},{:.3},{},{:.1},{},{},{}",
            r.id,
            r.op.code(),
            r.kind.label(),
            u8::from(r.is_static),
            k.time_s,
            tput,
            k.tech.label(),
            k.rsrp_dbm,
            k.mcs,
            k.bler,
            k.ca,
            k.speed_mph(),
            k.timezone.label(),
            k.region.label(),
            k.handovers_in_window,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TestKind;
    use crate::kpi::KpiSample;
    use wheels_geo::region::RegionKind;
    use wheels_geo::timezone::Timezone;
    use wheels_netsim::server::ServerKind;
    use wheels_radio::band::Technology;
    use wheels_ran::cell::CellId;
    use wheels_ran::operator::Operator;

    fn tiny_db() -> ConsolidatedDb {
        ConsolidatedDb {
            records: vec![TestRecord {
                id: 7,
                op: Operator::TMobile,
                kind: TestKind::ThroughputDl,
                start_s: 0.0,
                duration_s: 30.0,
                server_kind: ServerKind::Cloud,
                server_name: "EC2 Ohio".into(),
                is_static: false,
                start_odometer_m: 0.0,
                end_odometer_m: 100.0,
                timezone: Timezone::Central,
                frac_hs5g: 0.5,
                kpi: vec![KpiSample {
                    time_s: 0.5,
                    tput_mbps: Some(42.5),
                    tech: Technology::Nr5gMid,
                    cell: CellId(9),
                    rsrp_dbm: -90.0,
                    sinr_db: 15.0,
                    mcs: 20,
                    bler: 0.08,
                    ca: 2,
                    handovers_in_window: 0,
                    speed_mps: 30.0,
                    odometer_m: 10.0,
                    region: RegionKind::Highway,
                    timezone: Timezone::Central,
                    in_handover: false,
                }],
                rtt_ms: vec![],
                handovers: vec![],
                app: None,
            }],
            passive: vec![],
        }
    }

    #[test]
    fn json_roundtrip() {
        let db = tiny_db();
        let j = to_json(&db).unwrap();
        let back = from_json(&j).unwrap();
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.records[0].kpi[0].mcs, 20);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let db = tiny_db();
        let mut buf = Vec::new();
        write_tput_csv(&db, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("7,T,DL,0,"));
        assert!(lines[1].contains("5G-mid"));
    }

    #[test]
    fn csv_skips_samples_without_throughput() {
        let mut db = tiny_db();
        db.records[0].kpi[0].tput_mbps = None;
        let mut buf = Vec::new();
        write_tput_csv(&db, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 1);
    }
}
