//! Fig. 10: per-test performance vs % of time connected to high-speed 5G.
//!
//! §5.6's surprise: except for T-Mobile's midband in the downlink, being
//! on high-speed 5G most of a test barely moves the test's mean throughput
//! or RTT.

use wheels_ran::operator::Operator;
use wheels_xcal::database::TestKind;

use crate::index::AnalysisIndex;
use crate::stats::{mean, pearson};

/// Per-test (fraction of time on hs5G, mean metric) scatter per operator.
#[derive(Debug, Clone)]
pub struct Hs5gScatter {
    /// (op, points) for mean DL throughput.
    pub dl: Vec<(Operator, Vec<(f64, f64)>)>,
    /// (op, points) for mean UL throughput.
    pub ul: Vec<(Operator, Vec<(f64, f64)>)>,
    /// (op, points) for mean RTT.
    pub rtt: Vec<(Operator, Vec<(f64, f64)>)>,
}

fn scatter(ix: &AnalysisIndex<'_>, op: Operator, kind: TestKind) -> Vec<(f64, f64)> {
    ix.records(op, kind, false)
        .filter_map(|r| {
            let y = match kind {
                TestKind::Rtt => {
                    if r.rtt_ms.is_empty() {
                        return None;
                    }
                    mean(&r.rtt_ms.iter().map(|&v| v as f64).collect::<Vec<_>>())
                }
                _ => r.mean_tput_mbps()?,
            };
            Some((r.frac_hs5g as f64, y))
        })
        .collect()
}

/// Compute Fig. 10 from the index's record partitions.
pub fn compute(ix: &AnalysisIndex<'_>) -> Hs5gScatter {
    let per = |kind: TestKind| {
        ix.ops()
            .iter()
            .map(|&op| (op, scatter(ix, op, kind)))
            .collect()
    };
    Hs5gScatter {
        dl: per(TestKind::ThroughputDl),
        ul: per(TestKind::ThroughputUl),
        rtt: per(TestKind::Rtt),
    }
}

impl Hs5gScatter {
    /// Correlation between hs5G fraction and the metric for one panel.
    pub fn corr(points: &[(f64, f64)]) -> f64 {
        let x: Vec<f64> = points.iter().map(|p| p.0).collect();
        let y: Vec<f64> = points.iter().map(|p| p.1).collect();
        pearson(&x, &y)
    }

    /// Median metric for tests mostly on hs5G vs mostly off it.
    pub fn split_medians(points: &[(f64, f64)]) -> (f64, f64) {
        let hi: Vec<f64> = points.iter().filter(|p| p.0 > 0.7).map(|p| p.1).collect();
        let lo: Vec<f64> = points.iter().filter(|p| p.0 < 0.3).map(|p| p.1).collect();
        (crate::stats::median(&hi), crate::stats::median(&lo))
    }

    /// Render the figure as per-operator summaries.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig. 10 — per-test performance vs % time on hs5G\n");
        for (title, list) in [("DL Mbps", &self.dl), ("UL Mbps", &self.ul), ("RTT ms", &self.rtt)] {
            for (op, pts) in list.iter() {
                let (hi, lo) = Self::split_medians(pts);
                out.push_str(&format!(
                    "  {} {title}: n={} r={:+.2} median(hs5G>70%)={:.1} median(hs5G<30%)={:.1}\n",
                    op.code(),
                    pts.len(),
                    Self::corr(pts),
                    hi,
                    lo
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix as small_ix;

    #[test]
    fn panels_have_points() {
        let f = compute(small_ix());
        for (_, pts) in f.dl.iter().chain(f.ul.iter()).chain(f.rtt.iter()) {
            assert!(!pts.is_empty());
        }
    }

    #[test]
    fn tmobile_dl_benefits_most_from_midband() {
        // §5.6: only T-Mobile's midband brings a substantial DL
        // improvement.
        let f = compute(small_ix());
        let t = f
            .dl
            .iter()
            .find(|(o, _)| *o == Operator::TMobile)
            .map(|(_, p)| Hs5gScatter::corr(p))
            .unwrap();
        assert!(t > -0.2, "T-Mobile DL r = {t}");
    }

    #[test]
    fn hs5g_fraction_in_unit_interval() {
        let f = compute(small_ix());
        for (_, pts) in &f.dl {
            for (x, _) in pts {
                assert!((0.0..=1.0).contains(x));
            }
        }
    }
}
