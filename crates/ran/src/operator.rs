//! The three major US operators and their strategic traits.
//!
//! §4.2 of the paper: *"Verizon has prioritized the deployment of 5G mmWave
//! (in downtown areas of major cities), while T-Mobile has focused on
//! expanding the coverage to larger geographical areas by prioritizing
//! low/mid-band deployments. In contrast, AT&T offers better 4G coverage (a
//! much larger percentage of LTE-A vs. LTE)."*

use std::fmt;

use wheels_radio::beam::BeamProfile;

/// A US mobile network operator in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum Operator {
    /// Verizon ("V" in the paper's tables).
    Verizon,
    /// T-Mobile ("T").
    TMobile,
    /// AT&T ("A").
    Att,
}

impl Operator {
    /// All three operators in the paper's presentation order.
    pub const ALL: [Operator; 3] = [Operator::Verizon, Operator::TMobile, Operator::Att];

    /// Full display name.
    pub fn label(self) -> &'static str {
        match self {
            Operator::Verizon => "Verizon",
            Operator::TMobile => "T-Mobile",
            Operator::Att => "AT&T",
        }
    }

    /// Single-letter code used in Table 1.
    pub fn code(self) -> char {
        match self {
            Operator::Verizon => 'V',
            Operator::TMobile => 'T',
            Operator::Att => 'A',
        }
    }

    /// The operator's mmWave beam profile (§5.5): Verizon uses fewer, wider
    /// beams (lower gain → lower logged RSRP); AT&T uses narrow beams.
    /// T-Mobile's mmWave footprint is negligible; give it the narrow
    /// profile for the rare samples.
    pub fn mmwave_beams(self) -> BeamProfile {
        match self {
            Operator::Verizon => BeamProfile::wide(),
            Operator::TMobile | Operator::Att => BeamProfile::narrow(),
        }
    }

    /// Whether Amazon Wavelength edge servers exist inside this operator's
    /// network (§3: only Verizon).
    pub fn has_edge_servers(self) -> bool {
        matches!(self, Operator::Verizon)
    }

    /// Stable machine-readable key used by scenario specs to select this
    /// operator slot.
    pub fn slot_key(self) -> &'static str {
        match self {
            Operator::Verizon => "verizon",
            Operator::TMobile => "tmobile",
            Operator::Att => "att",
        }
    }

    /// Resolve a scenario slot key back to the operator.
    pub fn from_slot(key: &str) -> Option<Operator> {
        Operator::ALL.into_iter().find(|op| op.slot_key() == key)
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_table1() {
        assert_eq!(Operator::Verizon.code(), 'V');
        assert_eq!(Operator::TMobile.code(), 'T');
        assert_eq!(Operator::Att.code(), 'A');
    }

    #[test]
    fn only_verizon_has_edge() {
        assert!(Operator::Verizon.has_edge_servers());
        assert!(!Operator::TMobile.has_edge_servers());
        assert!(!Operator::Att.has_edge_servers());
    }

    #[test]
    fn verizon_beams_wider_than_att() {
        assert!(
            Operator::Verizon.mmwave_beams().beamwidth_deg()
                > Operator::Att.mmwave_beams().beamwidth_deg()
        );
    }
}
