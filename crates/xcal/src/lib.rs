//! # wheels-xcal
//!
//! The measurement-and-logging substrate of the replication: what Accuver
//! XCAL Solo, XCAP-M post-processing, and the custom Android loggers did in
//! the paper.
//!
//! §B of the paper describes a genuinely painful pipeline: applications
//! logged timestamps in UTC or local time, XCAL saved `.drm` files with
//! *local-time filenames* but *EDT contents*, the trip crossed four
//! timezones, and thousands of files had to be matched and merged into a
//! consolidated database. We reproduce that pipeline faithfully:
//!
//! * [`timestamp`] — the trip's wall clock and the three timestamp formats.
//! * [`kpi`] — per-500 ms cross-layer KPI samples.
//! * [`signaling`] — control-plane message log (handovers, cell changes).
//! * [`logger`] — the XCAL-style logger attached to a phone during tests.
//! * [`handover_logger`] — the passive ping-based logger phones
//!   (pessimistic coverage view of Fig. 1).
//! * [`sync`] — timestamp-format-aware matching of app logs to XCAL logs.
//! * [`drm`] — a binary `.drm` codec (the XCAP-M parsing substrate).
//! * [`database`] — the consolidated per-test database.
//! * [`export`] — JSON export of the dataset (the paper releases its data).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod drm;
pub mod export;
pub mod handover_logger;
pub mod kpi;
pub mod logger;
pub mod signaling;
pub mod sync;
pub mod timestamp;

pub use database::{ConsolidatedDb, TestKind, TestRecord};
pub use handover_logger::{PassiveLogger, PassiveSample};
pub use kpi::KpiSample;
pub use logger::{XcalLog, XcalLogger};
pub use signaling::SignalingMessage;
pub use timestamp::Timestamp;
