//! Table 3: our driving medians vs Ookla's published Q3 2022 medians.

use wheels_campaign::ookla::{ookla_q3_2022, Table3Row};
use wheels_ran::operator::Operator;

use super::fig09_test_stats;
use crate::index::AnalysisIndex;

/// The full Table 3.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// One row per operator.
    pub rows: Vec<Table3Row>,
}

/// Compute Table 3: our side from per-test medians (same statistic as
/// Fig. 9), Speedtest side from the published report.
pub fn compute(ix: &AnalysisIndex<'_>) -> Table3 {
    let stats = fig09_test_stats::compute(ix);
    let rows = ix
        .ops()
        .iter()
        .map(|&op| {
            let s = stats.for_op(op);
            let (st_dl, st_ul, st_rtt) = ookla_q3_2022(op);
            Table3Row {
                op,
                our_dl_mbps: s.dl_mean.median(),
                speedtest_dl_mbps: st_dl,
                our_ul_mbps: s.ul_mean.median(),
                speedtest_ul_mbps: st_ul,
                our_rtt_ms: s.rtt_mean.median(),
                speedtest_rtt_ms: st_rtt,
            }
        })
        .collect();
    Table3 { rows }
}

impl Table3 {
    /// Row for one operator.
    pub fn for_op(&self, op: Operator) -> &Table3Row {
        self.rows
            .iter()
            .find(|r| r.op == op)
            .expect("all operators computed")
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table 3 — comparison with Ookla Q3 2022\n           DL ours/ST (Mbps)    UL ours/ST (Mbps)    RTT ours/ST (ms)\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>8.2}/{:<8.2} {:>8.2}/{:<8.2} {:>8.2}/{:<8.2}\n",
                r.op.label(),
                r.our_dl_mbps,
                r.speedtest_dl_mbps,
                r.our_ul_mbps,
                r.speedtest_ul_mbps,
                r.our_rtt_ms,
                r.speedtest_rtt_ms
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix as small_ix;

    #[test]
    fn our_dl_below_speedtest() {
        // §5.6: our driving DL medians are significantly lower than
        // Ookla's (static users, nearby servers, multi-connection).
        let t = compute(small_ix());
        for r in &t.rows {
            assert!(
                r.our_dl_mbps < r.speedtest_dl_mbps * 1.3,
                "{}: ours {} vs ST {}",
                r.op,
                r.our_dl_mbps,
                r.speedtest_dl_mbps
            );
        }
    }

    #[test]
    fn our_ul_comparable_or_higher() {
        // §5.6: slightly higher UL in our data.
        let t = compute(small_ix());
        for r in &t.rows {
            assert!(
                r.our_ul_mbps > r.speedtest_ul_mbps * 0.3,
                "{}: ours {} vs ST {}",
                r.op,
                r.our_ul_mbps,
                r.speedtest_ul_mbps
            );
        }
    }

    #[test]
    fn our_rtt_at_or_above_speedtest() {
        let t = compute(small_ix());
        for r in &t.rows {
            assert!(
                r.our_rtt_ms > r.speedtest_rtt_ms * 0.7,
                "{}: ours {} vs ST {}",
                r.op,
                r.our_rtt_ms,
                r.speedtest_rtt_ms
            );
        }
    }

    #[test]
    fn render_has_three_rows() {
        let s = compute(small_ix()).render();
        assert!(s.contains("Verizon") && s.contains("T-Mobile") && s.contains("AT&T"));
        assert!(s.contains("116.14"));
    }
}
