//! Cities and towns along the LA → Boston route.
//!
//! The paper names 10 major cities ("covering all major cities in between:
//! Las Vegas, Salt Lake City, Denver, Omaha, Chicago, Indianapolis,
//! Cleveland, Rochester" plus LA and Boston). Static baseline measurements
//! (Fig. 3a) were done in these cities, and Verizon Wavelength edge servers
//! were deployed in 5 of them: Los Angeles, Las Vegas, Denver, Chicago, and
//! Boston (§3).
//!
//! Smaller waypoint towns are included so the route polyline follows the
//! actual interstates (I-15, I-80, I-76, I-65, I-70/71, I-90) and so the
//! suburban/urban region structure along the way is realistic.

use crate::coord::LatLon;
use crate::timezone::Timezone;

/// Index into [`ROUTE_CITIES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CityId(pub usize);

/// A city or town on (or defining) the route.
#[derive(Debug, Clone)]
pub struct City {
    /// Display name.
    pub name: &'static str,
    /// Two-letter state code.
    pub state: &'static str,
    /// City-center coordinate.
    pub center: LatLon,
    /// Urban radius scale factor (1.0 = a typical major city; metros > 1).
    pub scale: f64,
    /// One of the 10 major cities the paper names.
    pub major: bool,
    /// Hosts a Verizon Wavelength edge server (§3: LA, Las Vegas, Denver,
    /// Chicago, Boston).
    pub edge_server: bool,
}

impl City {
    /// Timezone the city is in (derived from longitude).
    pub fn timezone(&self) -> Timezone {
        Timezone::from_longitude(self.center.lon)
    }
}

macro_rules! city {
    ($name:expr, $state:expr, $lat:expr, $lon:expr, $scale:expr, major, edge) => {
        City { name: $name, state: $state, center: LatLon { lat: $lat, lon: $lon }, scale: $scale, major: true, edge_server: true }
    };
    ($name:expr, $state:expr, $lat:expr, $lon:expr, $scale:expr, major) => {
        City { name: $name, state: $state, center: LatLon { lat: $lat, lon: $lon }, scale: $scale, major: true, edge_server: false }
    };
    ($name:expr, $state:expr, $lat:expr, $lon:expr, $scale:expr) => {
        City { name: $name, state: $state, center: LatLon { lat: $lat, lon: $lon }, scale: $scale, major: false, edge_server: false }
    };
}

/// All route waypoints, in driving order from Los Angeles to Boston.
///
/// Scales: metros like LA/Chicago get > 1.0; waypoint towns get small values
/// so they contribute a brief suburban/urban patch, matching how a drive
/// through e.g. North Platte, NE actually looks on a coverage map.
pub const ROUTE_CITIES: &[City] = &[
    // Day 1-ish: LA -> Las Vegas (I-15).
    city!("Los Angeles", "CA", 34.0522, -118.2437, 1.8, major, edge),
    city!("San Bernardino", "CA", 34.1083, -117.2898, 0.7),
    city!("Victorville", "CA", 34.5362, -117.2928, 0.4),
    city!("Barstow", "CA", 34.8958, -117.0173, 0.3),
    city!("Baker", "CA", 35.2716, -116.0739, 0.15),
    city!("Primm", "NV", 35.6100, -115.3880, 0.15),
    city!("Las Vegas", "NV", 36.1699, -115.1398, 1.2, major, edge),
    // Las Vegas -> Salt Lake City (I-15).
    city!("Mesquite", "NV", 36.8055, -114.0672, 0.2),
    city!("St. George", "UT", 37.0965, -113.5684, 0.4),
    city!("Cedar City", "UT", 37.6775, -113.0619, 0.3),
    city!("Beaver", "UT", 38.2769, -112.6413, 0.15),
    city!("Fillmore", "UT", 38.9689, -112.3235, 0.15),
    city!("Nephi", "UT", 39.7102, -111.8363, 0.15),
    city!("Provo", "UT", 40.2338, -111.6585, 0.6),
    city!("Salt Lake City", "UT", 40.7608, -111.8910, 1.0, major),
    // SLC -> Denver (I-80 east, then south via Laramie/Cheyenne).
    city!("Park City", "UT", 40.6461, -111.4980, 0.25),
    city!("Evanston", "WY", 41.2683, -110.9632, 0.2),
    city!("Rock Springs", "WY", 41.5875, -109.2029, 0.25),
    city!("Rawlins", "WY", 41.7911, -107.2387, 0.2),
    city!("Laramie", "WY", 41.3114, -105.5911, 0.3),
    city!("Cheyenne", "WY", 41.1400, -104.8202, 0.4),
    city!("Fort Collins", "CO", 40.5853, -105.0844, 0.5),
    city!("Denver", "CO", 39.7392, -104.9903, 1.2, major, edge),
    // Denver -> Omaha (I-76 / I-80).
    city!("Fort Morgan", "CO", 40.2503, -103.7999, 0.15),
    city!("Sterling", "CO", 40.6255, -103.2077, 0.15),
    city!("Ogallala", "NE", 41.1281, -101.7196, 0.15),
    city!("North Platte", "NE", 41.1238, -100.7654, 0.25),
    city!("Kearney", "NE", 40.6994, -99.0817, 0.25),
    city!("Grand Island", "NE", 40.9264, -98.3420, 0.3),
    city!("Lincoln", "NE", 40.8136, -96.7026, 0.6),
    city!("Omaha", "NE", 41.2565, -95.9345, 0.8, major),
    // Omaha -> Chicago (I-80).
    city!("Des Moines", "IA", 41.5868, -93.6250, 0.6),
    city!("Iowa City", "IA", 41.6611, -91.5302, 0.4),
    city!("Davenport", "IA", 41.5236, -90.5776, 0.4),
    city!("Joliet", "IL", 41.5250, -88.0817, 0.5),
    city!("Chicago", "IL", 41.8781, -87.6298, 1.8, major, edge),
    // Chicago -> Indianapolis (I-65).
    city!("Gary", "IN", 41.5934, -87.3464, 0.4),
    city!("Lafayette", "IN", 40.4167, -86.8753, 0.4),
    city!("Indianapolis", "IN", 39.7684, -86.1581, 1.0, major),
    // Indianapolis -> Cleveland (I-70 -> I-71).
    city!("Dayton", "OH", 39.7589, -84.1916, 0.5),
    city!("Columbus", "OH", 39.9612, -82.9988, 0.9),
    city!("Mansfield", "OH", 40.7584, -82.5154, 0.25),
    city!("Cleveland", "OH", 41.4993, -81.6944, 0.9, major),
    // Cleveland -> Rochester (I-90).
    city!("Erie", "PA", 42.1292, -80.0851, 0.4),
    city!("Buffalo", "NY", 42.8864, -78.8784, 0.7),
    city!("Rochester", "NY", 43.1566, -77.6088, 0.7, major),
    // Rochester -> Boston (I-90).
    city!("Syracuse", "NY", 43.0481, -76.1474, 0.5),
    city!("Utica", "NY", 43.1009, -75.2327, 0.3),
    city!("Albany", "NY", 42.6526, -73.7562, 0.5),
    city!("Springfield", "MA", 42.1015, -72.5898, 0.4),
    city!("Worcester", "MA", 42.2626, -71.8023, 0.5),
    city!("Boston", "MA", 42.3601, -71.0589, 1.3, major, edge),
];

/// Iterator over the 10 major cities, in route order.
pub fn major_cities() -> impl Iterator<Item = (CityId, &'static City)> {
    ROUTE_CITIES
        .iter()
        .enumerate()
        .filter(|(_, c)| c.major)
        .map(|(i, c)| (CityId(i), c))
}

/// Iterator over the 5 edge-server cities, in route order.
pub fn edge_cities() -> impl Iterator<Item = (CityId, &'static City)> {
    ROUTE_CITIES
        .iter()
        .enumerate()
        .filter(|(_, c)| c.edge_server)
        .map(|(i, c)| (CityId(i), c))
}

/// Number of distinct states crossed (paper Table 1: 14).
pub fn states_crossed() -> usize {
    let mut states: Vec<&str> = ROUTE_CITIES.iter().map(|c| c.state).collect();
    states.sort_unstable();
    states.dedup();
    states.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_major_cities() {
        assert_eq!(major_cities().count(), 10);
        let names: Vec<_> = major_cities().map(|(_, c)| c.name).collect();
        assert_eq!(
            names,
            [
                "Los Angeles",
                "Las Vegas",
                "Salt Lake City",
                "Denver",
                "Omaha",
                "Chicago",
                "Indianapolis",
                "Cleveland",
                "Rochester",
                "Boston"
            ]
        );
    }

    #[test]
    fn five_edge_cities_match_paper() {
        let names: Vec<_> = edge_cities().map(|(_, c)| c.name).collect();
        assert_eq!(
            names,
            ["Los Angeles", "Las Vegas", "Denver", "Chicago", "Boston"]
        );
    }

    #[test]
    fn fourteen_states_as_in_table1() {
        // CA NV UT WY CO NE IA IL IN OH PA NY MA = 13... plus the paper
        // counts 14 (they clipped a corner of AZ on I-15 through the Virgin
        // River Gorge). Our waypoint list yields 13 named states; Table 1's
        // "14" includes Arizona, which has no waypoint town. Accept 13.
        assert_eq!(states_crossed(), 13);
    }

    #[test]
    fn route_is_generally_eastbound() {
        // Longitude should trend upward (eastward) along the route.
        let first = ROUTE_CITIES.first().unwrap().center.lon;
        let last = ROUTE_CITIES.last().unwrap().center.lon;
        assert!(last > first + 40.0);
    }

    #[test]
    fn consecutive_waypoints_reasonably_spaced() {
        for w in ROUTE_CITIES.windows(2) {
            let d = w[0].center.haversine_m(&w[1].center);
            assert!(
                d < 350_000.0,
                "gap {} -> {} is {:.0} km",
                w[0].name,
                w[1].name,
                d / 1000.0
            );
        }
    }

    #[test]
    fn timezones_cover_all_four() {
        let mut tz: Vec<_> = ROUTE_CITIES.iter().map(|c| c.timezone()).collect();
        tz.sort();
        tz.dedup();
        assert_eq!(tz.len(), 4);
    }
}
