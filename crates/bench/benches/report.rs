//! Report-pipeline benches: index construction and full-report generation
//! at 1 vs 4 worker threads. The parallel variant must produce the same
//! bytes (asserted here once before measuring) — the bench shows what the
//! fan-out and the shared columnar index buy in wall time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;

use wheels_analysis::{report, AnalysisIndex};
use wheels_bench::{run_campaign, ReproScale};
use wheels_xcal::database::ConsolidatedDb;

fn db() -> &'static (wheels_campaign::Campaign, ConsolidatedDb) {
    static DB: OnceLock<(wheels_campaign::Campaign, ConsolidatedDb)> = OnceLock::new();
    DB.get_or_init(|| run_campaign(ReproScale::Smoke, 2026))
}

fn ix() -> &'static AnalysisIndex<'static> {
    static IX: OnceLock<AnalysisIndex<'static>> = OnceLock::new();
    IX.get_or_init(|| AnalysisIndex::build(&db().1))
}

fn bench_index_build(c: &mut Criterion) {
    let (_, database) = db();
    let mut g = c.benchmark_group("report");
    g.bench_function("index_build", |b| {
        b.iter(|| black_box(AnalysisIndex::build(database)))
    });
    g.finish();
}

fn bench_generate(c: &mut Criterion) {
    let (campaign, _) = db();
    let index = ix();
    let route = campaign.plan().route();
    let sequential = report::generate_jobs(index, route, 1);
    assert_eq!(
        sequential,
        report::generate_jobs(index, route, 4),
        "parallel report must be byte-identical"
    );
    let mut g = c.benchmark_group("report");
    g.sample_size(20);
    g.bench_function("generate_jobs_1", |b| {
        b.iter(|| black_box(report::generate_jobs(index, route, 1)))
    });
    g.bench_function("generate_jobs_4", |b| {
        b.iter(|| black_box(report::generate_jobs(index, route, 4)))
    });
    g.finish();
}

criterion_group!(benches, bench_index_build, bench_generate);
criterion_main!(benches);
