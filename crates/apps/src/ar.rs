//! The edge-assisted AR benchmark app (§7.1.1, §C).
//!
//! Offloads 30 FPS camera frames for DNN object detection; an on-device
//! local tracker moves stale bounding boxes forward between server
//! results, so accuracy degrades gracefully with E2E latency (Table 5).

use crate::config::{OffloadConfig, AR_CONFIG};
use crate::map_table::map_for_latency_ms;
use crate::offload::{OffloadRun, OffloadSummary};
use crate::AppLink;

/// Result of one 20 s AR run.
#[derive(Debug, Clone)]
pub struct ArResult {
    /// The underlying offload summary.
    pub offload: OffloadSummary,
    /// Object-detection accuracy, mAP % (mean over frames via Table 5).
    pub map_accuracy: f64,
}

/// The AR app.
#[derive(Debug, Clone, Copy)]
pub struct ArApp {
    /// Configuration (defaults to Table 4's AR column).
    pub config: OffloadConfig,
}

impl Default for ArApp {
    fn default() -> Self {
        ArApp { config: AR_CONFIG }
    }
}

impl ArApp {
    /// Run once starting at `t0_s`, with or without frame compression.
    pub fn run(&self, t0_s: f64, compressed: bool, link: &mut dyn AppLink) -> ArResult {
        let offload = OffloadRun {
            config: self.config,
            compressed,
        }
        .execute(t0_s, link);
        // Per-frame accuracy via Table 5, averaged — the tracker produces a
        // result for *every* source frame, its quality set by how stale the
        // latest server result is.
        let map_accuracy = if offload.frames.is_empty() {
            // No frame ever completed: tracker flies blind at the floor.
            map_for_latency_ms(10_000.0, self.config.fps, compressed)
        } else {
            offload
                .frames
                .iter()
                .map(|f| map_for_latency_ms(f.e2e_ms, self.config.fps, compressed))
                .sum::<f64>()
                / offload.frames.len() as f64
        };
        ArResult {
            offload,
            map_accuracy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstantLink;

    #[test]
    fn best_static_accuracy_ballpark() {
        // Paper: best static achieves mAP 36.5 at E2E 68 ms.
        let r = ArApp::default().run(0.0, true, &mut ConstantLink::good());
        assert!((33.0..38.5).contains(&r.map_accuracy), "{}", r.map_accuracy);
    }

    #[test]
    fn driving_accuracy_lower() {
        let good = ArApp::default().run(0.0, true, &mut ConstantLink::good());
        let poor = ArApp::default().run(0.0, true, &mut ConstantLink::poor());
        assert!(poor.map_accuracy < good.map_accuracy - 2.0);
        // Paper driving median mAP ≈ 30 with compression.
        assert!((20.0..33.0).contains(&poor.map_accuracy), "{}", poor.map_accuracy);
    }

    #[test]
    fn compression_helps_on_weak_links() {
        let with = ArApp::default().run(0.0, true, &mut ConstantLink::poor());
        let without = ArApp::default().run(0.0, false, &mut ConstantLink::poor());
        assert!(with.offload.e2e_median_ms < without.offload.e2e_median_ms);
        assert!(with.map_accuracy > without.map_accuracy);
    }

    #[test]
    fn accuracy_never_exceeds_table_max() {
        let r = ArApp::default().run(
            0.0,
            true,
            &mut ConstantLink {
                obs: crate::LinkObs {
                    dl_mbps: 10_000.0,
                    ul_mbps: 10_000.0,
                    rtt_ms: 0.1,
                    in_handover: false,
                },
            },
        );
        assert!(r.map_accuracy <= 38.45 + 1e-9);
    }
}
