//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each bench prints the comparison (the quantity of interest) once, then
//! criterion-times the underlying run so regressions in either result or
//! cost are visible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use wheels_apps::video::bba::Bba;
use wheels_apps::video::{VideoSession, BITRATES_MBPS};
use wheels_apps::{ar::ArApp, cav::CavApp, AppLink, ConstantLink, LinkObs};
use wheels_geo::trip::DrivePlan;
use wheels_netsim::bulk::BulkTransferTest;
use wheels_netsim::bbr::Bbr;
use wheels_netsim::cubic::Cubic;
use wheels_netsim::reno::Reno;
use wheels_netsim::rtt::RttModel;
use wheels_netsim::server::{ServerKind, ServerSelector, CLOUD_OHIO};
use wheels_ran::deployment::build_cells;
use wheels_ran::policy::TrafficDemand;
use wheels_ran::ue::{UeParams, UeRadio};
use wheels_ran::{Direction, Operator};

/// A sawtooth driving-like link for controlled comparisons: high-BDP
/// phases (where CUBIC's cubic recovery beats Reno's AIMD) alternating
/// with deep fades.
fn sawtooth_link(t: f64) -> (f64, f64) {
    let phase = (t / 6.0) as u64 % 3;
    let cap = match phase {
        0 => 650.0,
        1 => 40.0,
        _ => 260.0,
    };
    (cap, 0.12)
}

/// Ablation: CUBIC vs Reno vs BBR over the driving-like link (§5's choice
/// of the default CUBIC matters for high-BDP recovery; BBR is the
/// what-if for the bufferbloat the RTT figures show).
fn ablate_cc(c: &mut Criterion) {
    let run = |name: &str| {
        let test = BulkTransferTest::default();
        let cc: Box<dyn wheels_netsim::tcp::CongestionControl + Send> = match name {
            "cubic" => Box::new(Cubic::new()),
            "reno" => Box::new(Reno::new()),
            _ => Box::new(Bbr::new()),
        };
        let samples = test.run_with(0.0, cc, sawtooth_link);
        BulkTransferTest::mean_mbps(&samples)
    };
    eprintln!(
        "[ablation] sawtooth link: CUBIC {:.1} / Reno {:.1} / BBR {:.1} Mbps",
        run("cubic"),
        run("reno"),
        run("bbr")
    );
    c.bench_function("ablation/cc_compare", |b| {
        b.iter(|| black_box((run("cubic"), run("reno"), run("bbr"))))
    });
}

/// Ablation: edge vs cloud server placement for RTT (§5.2's Wavelength
/// result).
fn ablate_edge(c: &mut Criterion) {
    let selector = ServerSelector::new();
    let boston = wheels_geo::coord::LatLon::new(42.36, -71.06);
    let edge = selector.select(Operator::Verizon, boston, wheels_geo::timezone::Timezone::Eastern);
    assert_eq!(edge.kind, ServerKind::Edge);
    let sample_median = |server: &wheels_netsim::server::Server| {
        let mut m = RttModel::new(rand::SeedableRng::seed_from_u64(5));
        let mut v: Vec<f64> = (0..2_000)
            .map(|i| {
                m.sample_ms(
                    i as f64 * 0.2,
                    boston,
                    server,
                    wheels_radio::band::Technology::Nr5gMmWave,
                    18.0,
                    2.0,
                    false,
                )
            })
            .collect();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    eprintln!(
        "[ablation] mmWave RTT median: edge {:.1} ms vs cloud {:.1} ms",
        sample_median(&edge),
        sample_median(&CLOUD_OHIO)
    );
    c.bench_function("ablation/edge_vs_cloud_rtt", |b| {
        b.iter(|| black_box((sample_median(&edge), sample_median(&CLOUD_OHIO))))
    });
}

/// Ablation: AR/CAV frame compression on vs off (§7.1's app-level
/// optimization finding).
fn ablate_compression(c: &mut Criterion) {
    let mut link = ConstantLink::poor();
    let ar_with = ArApp::default().run(0.0, true, &mut link);
    let ar_without = ArApp::default().run(0.0, false, &mut link);
    let cav_with = CavApp::default().run(0.0, true, &mut link);
    let cav_without = CavApp::default().run(0.0, false, &mut link);
    eprintln!(
        "[ablation] AR E2E median: comp {:.0} ms vs raw {:.0} ms; CAV: comp {:.0} ms vs raw {:.0} ms",
        ar_with.offload.e2e_median_ms,
        ar_without.offload.e2e_median_ms,
        cav_with.offload.e2e_median_ms,
        cav_without.offload.e2e_median_ms
    );
    c.bench_function("ablation/frame_compression", |b| {
        b.iter(|| {
            let mut l = ConstantLink::poor();
            black_box(ArApp::default().run(0.0, true, &mut l))
        })
    });
}

/// Ablation: BBA reservoir sensitivity (the buffering that decouples video
/// QoE from handovers).
fn ablate_bba_reservoir(c: &mut Criterion) {
    struct Wobbly;
    impl AppLink for Wobbly {
        fn sample(&mut self, t_s: f64) -> LinkObs {
            let cap = if ((t_s / 12.0) as u64).is_multiple_of(2) { 60.0 } else { 6.0 };
            LinkObs {
                dl_mbps: cap,
                ul_mbps: 5.0,
                rtt_ms: 60.0,
                in_handover: false,
            }
        }
    }
    // Report how the rate map behaves at a mid buffer for different
    // reservoirs, plus a full session QoE.
    for reservoir in [2.0, 5.0, 10.0] {
        let bba = Bba {
            reservoir_s: reservoir,
            cushion_s: reservoir + 10.0,
        };
        let rate = bba.pick(8.0, &BITRATES_MBPS, None);
        eprintln!("[ablation] BBA reservoir {reservoir}s -> rate at 8s buffer = {rate} Mbps");
    }
    let qoe = VideoSession::default().run(0.0, &mut Wobbly).qoe;
    eprintln!("[ablation] default-BBA session QoE on wobbly link: {qoe:.1}");
    c.bench_function("ablation/bba_session", |b| {
        b.iter(|| black_box(VideoSession::default().run(0.0, &mut Wobbly)))
    });
}

/// Ablation: passive vs active coverage probing (the Fig. 1 methodology
/// result), measured directly on the UE policy.
fn ablate_probing(c: &mut Criterion) {
    let plan = DrivePlan::cross_country(7);
    let db = Arc::new(build_cells(plan.route(), Operator::Verizon, 7, 0));
    let share_5g = |demand: TrafficDemand| {
        let mut ue = UeRadio::new(Operator::Verizon, Arc::clone(&db), UeParams::default(), 3);
        let t0 = plan.days()[0].start_time_s as f64;
        let mut n5g = 0usize;
        let mut n = 0usize;
        for i in 0..20_000 {
            let t = t0 + i as f64;
            let s = ue.step(t, &plan.state_at(t), demand);
            if s.tech.is_5g() {
                n5g += 1;
            }
            n += 1;
        }
        n5g as f64 / n as f64
    };
    eprintln!(
        "[ablation] Verizon 5G share: passive ping {:.1}% vs DL backlog {:.1}%",
        share_5g(TrafficDemand::Ping) * 100.0,
        share_5g(TrafficDemand::Backlog(Direction::Downlink)) * 100.0
    );
    c.bench_function("ablation/passive_vs_active_probe", |b| {
        b.iter(|| black_box(share_5g(TrafficDemand::Ping)))
    });
}

criterion_group!(
    benches,
    ablate_cc,
    ablate_edge,
    ablate_compression,
    ablate_bba_reservoir,
    ablate_probing
);
criterion_main!(benches);
