//! Cell sites and the per-operator cell database.
//!
//! Cells are indexed by their closest-approach odometer position along the
//! route, one sorted layer per technology, so the simulator can query
//! "which cells can I hear at odometer X" with a binary search. Table 1 of
//! the paper counts 3,020 / 4,038 / 3,150 unique cells connected for
//! Verizon / T-Mobile / AT&T — our deployment generator produces databases
//! of comparable density.

use wheels_radio::band::Technology;

use crate::operator::Operator;

/// Globally unique cell identifier (unique across operators and layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct CellId(pub u32);

/// One cell site (one sector of one gNB/eNB on one layer).
#[derive(Debug, Clone, Copy)]
pub struct CellSite {
    /// Unique id.
    pub id: CellId,
    /// Owning operator.
    pub op: Operator,
    /// Radio technology of this layer.
    pub tech: Technology,
    /// Odometer position of the site's closest approach to the road, m.
    pub odometer_m: f64,
    /// Lateral offset from the road, m (towers are rarely on the shoulder).
    pub lateral_m: f64,
    /// Per-resource-element EIRP, dBm (channel EIRP normalized per RE, the
    /// quantity RSRP budgets use).
    pub eirp_re_dbm: f64,
}

impl CellSite {
    /// 3-D-ish distance from a UE at odometer `od_m`, meters.
    pub fn distance_m(&self, od_m: f64) -> f64 {
        let along = od_m - self.odometer_m;
        (along * along + self.lateral_m * self.lateral_m).sqrt()
    }
}

/// One technology layer's cells in struct-of-arrays form, sorted by
/// odometer.
///
/// The per-tick candidate evaluation streams over a window of cells
/// computing `eirp - loss(distance) + shadow` for each; splitting the hot
/// fields into parallel arrays keeps that loop's working set dense (the
/// distance/loss arithmetic touches 24 bytes per cell instead of a whole
/// [`CellSite`]) and lets the caller address per-cell side state (shadowing
/// fields) by layer position instead of by id lookup.
#[derive(Debug, Clone, Default)]
pub struct LayerCells {
    sites: Vec<CellSite>,
    ids: Vec<CellId>,
    od_m: Vec<f64>,
    /// Squared lateral offset, m² (precomputed factor of the distance).
    lat_sq_m2: Vec<f64>,
    eirp_re_dbm: Vec<f64>,
}

impl LayerCells {
    fn push(&mut self, s: CellSite) {
        self.sites.push(s);
        self.ids.push(s.id);
        self.od_m.push(s.odometer_m);
        self.lat_sq_m2.push(s.lateral_m * s.lateral_m);
        self.eirp_re_dbm.push(s.eirp_re_dbm);
    }

    /// Number of cells on this layer.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the layer has no cells.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The full sites, odometer order.
    pub fn sites(&self) -> &[CellSite] {
        &self.sites
    }

    /// Cell ids by layer position.
    pub fn ids(&self) -> &[CellId] {
        &self.ids
    }

    /// Closest-approach odometers by layer position, meters.
    pub fn od_m(&self) -> &[f64] {
        &self.od_m
    }

    /// Squared lateral offsets by layer position, m².
    pub fn lat_sq_m2(&self) -> &[f64] {
        &self.lat_sq_m2
    }

    /// Per-RE EIRPs by layer position, dBm.
    pub fn eirp_re_dbm(&self) -> &[f64] {
        &self.eirp_re_dbm
    }
}

/// All cells of one operator, organized per technology layer and sorted by
/// odometer.
#[derive(Debug, Clone)]
pub struct CellDb {
    op: Operator,
    /// One layer per technology (index = position in `Technology::ALL`).
    layers: [LayerCells; 5],
}

impl CellDb {
    /// Build a database from an unsorted site list.
    ///
    /// # Panics
    /// Panics if any site belongs to a different operator.
    pub fn new(op: Operator, mut sites: Vec<CellSite>) -> Self {
        assert!(
            sites.iter().all(|s| s.op == op),
            "site list contains foreign operator"
        );
        sites.sort_by(|a, b| a.odometer_m.total_cmp(&b.odometer_m));
        let mut layers: [LayerCells; 5] = Default::default();
        for s in sites {
            let li = tech_index(s.tech);
            layers[li].push(s);
        }
        CellDb { op, layers }
    }

    /// The operator this database belongs to.
    pub fn op(&self) -> Operator {
        self.op
    }

    /// Total number of cells across all layers.
    pub fn len(&self) -> usize {
        self.layers.iter().map(LayerCells::len).sum()
    }

    /// True if no cells at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of cells on one technology layer.
    pub fn layer_len(&self, tech: Technology) -> usize {
        self.layers[tech_index(tech)].len()
    }

    /// One technology layer's cells in columnar form.
    pub fn layer(&self, tech: Technology) -> &LayerCells {
        &self.layers[tech_index(tech)]
    }

    /// Positions (into [`CellDb::layer`]) of `tech` cells whose closest
    /// approach lies within `window_m` of `od_m`.
    pub fn window_range(
        &self,
        tech: Technology,
        od_m: f64,
        window_m: f64,
    ) -> std::ops::Range<usize> {
        let od = &self.layers[tech_index(tech)].od_m;
        let lo = od.partition_point(|&o| o < od_m - window_m);
        let hi = od.partition_point(|&o| o <= od_m + window_m);
        lo..hi
    }

    /// Cells of `tech` whose closest approach lies within `window_m` of
    /// `od_m`, in odometer order.
    pub fn cells_near(&self, tech: Technology, od_m: f64, window_m: f64) -> &[CellSite] {
        &self.layers[tech_index(tech)].sites[self.window_range(tech, od_m, window_m)]
    }

    /// The strongest candidate of `tech` near `od_m` by plain distance
    /// (before shadowing): used for availability pre-checks.
    pub fn nearest_cell(&self, tech: Technology, od_m: f64) -> Option<&CellSite> {
        let window = tech.nominal_range_m() * 2.0;
        self.cells_near(tech, od_m, window)
            .iter()
            .min_by(|a, b| a.distance_m(od_m).total_cmp(&b.distance_m(od_m)))
    }
}

/// Incrementally tracked query window over one layer's odometer-sorted
/// positions.
///
/// [`CellDb::window_range`] answers each query with two binary searches;
/// a UE stepping monotonically along the route asks nearly the same
/// question every tick, so a cursor that only ever slides its `lo`/`hi`
/// bounds forward answers in O(cells entered/left) instead. The bounds it
/// produces are exactly `window_range`'s (a test pins this): `lo` is the
/// first position with `od >= od_m - window_m`, `hi` the first with
/// `od > od_m + window_m`, and sliding forward from any correct earlier
/// answer lands on the same positions as the binary searches because both
/// bounds are non-decreasing in `od_m`. A query below the previous
/// odometer falls back to the exact binary searches.
#[derive(Debug, Clone, Copy)]
pub struct WindowCursor {
    lo: usize,
    hi: usize,
    last_od_m: f64,
}

impl Default for WindowCursor {
    fn default() -> Self {
        WindowCursor {
            lo: 0,
            hi: 0,
            last_od_m: f64::NEG_INFINITY,
        }
    }
}

impl WindowCursor {
    /// Positions in `ods` (sorted ascending) within `window_m` of `od_m`.
    /// Identical to [`CellDb::window_range`] on the same slice.
    ///
    /// The sliding fast path requires `od_m - window_m` and
    /// `od_m + window_m` to be non-decreasing across calls; with a fixed
    /// `window_m` (one cursor per layer, each layer's window is a
    /// constant) the odometer check below covers both.
    pub fn range(&mut self, ods: &[f64], od_m: f64, window_m: f64) -> std::ops::Range<usize> {
        let lo_bound = od_m - window_m;
        let hi_bound = od_m + window_m;
        if od_m < self.last_od_m {
            self.lo = ods.partition_point(|&o| o < lo_bound);
            self.hi = ods.partition_point(|&o| o <= hi_bound);
        } else {
            while self.lo < ods.len() && ods[self.lo] < lo_bound {
                self.lo += 1;
            }
            while self.hi < ods.len() && ods[self.hi] <= hi_bound {
                self.hi += 1;
            }
        }
        self.last_od_m = od_m;
        self.lo..self.hi
    }
}

/// Index of a technology in [`Technology::ALL`].
///
/// `Technology::ALL` lists the variants in declaration order, so the
/// discriminant IS the index — no scan (this sits on the per-tick hot
/// path via [`CellDb::cells_near`]). A test pins the correspondence.
pub fn tech_index(tech: Technology) -> usize {
    tech as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(id: u32, tech: Technology, od: f64) -> CellSite {
        CellSite {
            id: CellId(id),
            op: Operator::Verizon,
            tech,
            odometer_m: od,
            lateral_m: 100.0,
            eirp_re_dbm: 30.0,
        }
    }

    #[test]
    fn tech_index_matches_all_order() {
        for (i, &t) in Technology::ALL.iter().enumerate() {
            assert_eq!(tech_index(t), i, "{t:?}");
        }
    }

    #[test]
    fn cells_near_returns_window() {
        let db = CellDb::new(
            Operator::Verizon,
            vec![
                site(1, Technology::Lte, 1_000.0),
                site(2, Technology::Lte, 5_000.0),
                site(3, Technology::Lte, 9_000.0),
                site(4, Technology::Nr5gMid, 5_100.0),
            ],
        );
        let near = db.cells_near(Technology::Lte, 5_000.0, 2_000.0);
        assert_eq!(near.len(), 1);
        assert_eq!(near[0].id, CellId(2));
        let wide = db.cells_near(Technology::Lte, 5_000.0, 5_000.0);
        assert_eq!(wide.len(), 3);
        // Different layer is not mixed in.
        assert_eq!(db.cells_near(Technology::Nr5gMid, 5_000.0, 2_000.0).len(), 1);
    }

    #[test]
    fn nearest_cell_picks_closest() {
        let db = CellDb::new(
            Operator::Verizon,
            vec![
                site(1, Technology::Lte, 1_000.0),
                site(2, Technology::Lte, 4_000.0),
            ],
        );
        assert_eq!(
            db.nearest_cell(Technology::Lte, 3_500.0).unwrap().id,
            CellId(2)
        );
    }

    #[test]
    fn nearest_cell_none_when_layer_empty() {
        let db = CellDb::new(Operator::Verizon, vec![site(1, Technology::Lte, 0.0)]);
        assert!(db.nearest_cell(Technology::Nr5gMmWave, 0.0).is_none());
    }

    #[test]
    fn distance_includes_lateral() {
        let s = site(1, Technology::Lte, 1_000.0);
        assert!((s.distance_m(1_000.0) - 100.0).abs() < 1e-9);
        let d = s.distance_m(1_300.0);
        assert!((d - (300.0f64 * 300.0 + 100.0 * 100.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn window_cursor_matches_binary_search() {
        let sites: Vec<CellSite> = (0..400)
            .map(|i| site(i, Technology::Lte, (i as f64 * 37.0) % 30_000.0))
            .collect();
        let db = CellDb::new(Operator::Verizon, sites);
        let ods = db.layer(Technology::Lte).od_m();
        let mut cur = WindowCursor::default();
        // Monotone sweep, then a regression, then resume: all must match.
        let mut queries: Vec<f64> = (0..600).map(|i| i as f64 * 55.0).collect();
        queries.push(4_000.0); // backwards jump -> exact recompute path
        queries.extend((0..100).map(|i| 4_000.0 + i as f64 * 91.0));
        for od in queries {
            assert_eq!(
                cur.range(ods, od, 2_500.0),
                db.window_range(Technology::Lte, od, 2_500.0),
                "at od {od}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "foreign operator")]
    fn foreign_operator_rejected() {
        let mut s = site(1, Technology::Lte, 0.0);
        s.op = Operator::Att;
        let _ = CellDb::new(Operator::Verizon, vec![s]);
    }
}
