//! The passive "handover-logger" phones.
//!
//! §3: three unrooted phones ran a custom Android app sending 38-byte ICMP
//! pings every 200 ms (just enough to keep the radio awake) and logging
//! GPS, cell IDs and cellular technology. §4.1's finding: this *passive*
//! view is far more pessimistic than the XCAL view during backlogged tests,
//! because operators do not elevate a UE to 5G under negligible traffic —
//! the disparity shown in Fig. 1.

use serde::{Deserialize, Serialize};

use wheels_radio::band::Technology;
use wheels_ran::cell::CellId;
use wheels_ran::ue::LinkSnapshot;

/// One passive-logger record.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PassiveSample {
    /// Plan time, seconds.
    pub time_s: f64,
    /// Serving cell.
    pub cell: CellId,
    /// Serving technology as the Android API reports it.
    pub tech: Technology,
    /// Odometer, meters (derived from GPS during post-processing).
    pub odometer_m: f64,
    /// Speed, m/s.
    pub speed_mps: f32,
    /// Longitude, degrees (for map rendering à la Fig. 1).
    pub lon: f32,
}

/// The full passive log of one operator across the trip.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PassiveLogger {
    samples: Vec<PassiveSample>,
}

impl PassiveLogger {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one tick (typically 1 s cadence).
    pub fn log(&mut self, s: &LinkSnapshot, lon: f64) {
        self.samples.push(PassiveSample {
            time_s: s.time_s,
            cell: s.cell,
            tech: s.tech,
            odometer_m: s.odometer_m,
            speed_mps: s.speed_mps as f32,
            lon: lon as f32,
        });
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[PassiveSample] {
        &self.samples
    }

    /// Discard every sample after plan time `t_s`, as if the logger app
    /// crashed then and nobody noticed until the end of the day. Returns
    /// the number of samples lost.
    pub fn truncate_after(&mut self, t_s: f64) -> usize {
        let before = self.samples.len();
        self.samples.retain(|s| s.time_s <= t_s);
        before - self.samples.len()
    }

    /// Discard samples inside the closed window `[w0_s, w1_s]` — a modem
    /// detach: the radio was gone, so nothing was logged. Returns the
    /// number of samples lost.
    pub fn drop_window(&mut self, w0_s: f64, w1_s: f64) -> usize {
        let before = self.samples.len();
        self.samples.retain(|s| s.time_s < w0_s || s.time_s > w1_s);
        before - self.samples.len()
    }

    /// Distance-weighted technology shares (fraction of miles on each
    /// technology), matching how the paper computes coverage.
    pub fn tech_shares(&self) -> [(Technology, f64); 5] {
        let mut meters = [0.0f64; 5];
        for w in self.samples.windows(2) {
            let (Some(a), Some(b)) = (w.first(), w.get(1)) else {
                continue;
            };
            let d = (b.odometer_m - a.odometer_m).max(0.0);
            let i = Technology::ALL
                .iter()
                .position(|&t| t == a.tech)
                // lint:allow(D7): Technology::ALL enumerates every variant, so the position always exists
                .expect("known technology");
            if let Some(m) = meters.get_mut(i) {
                *m += d;
            }
        }
        let total: f64 = meters.iter().sum::<f64>().max(1e-9);
        let mut out = [(Technology::Lte, 0.0); 5];
        for (slot, (t, m)) in out.iter_mut().zip(Technology::ALL.iter().zip(&meters)) {
            *slot = (*t, m / total);
        }
        out
    }

    /// Number of cell changes observed (the passive logger's proxy for
    /// handovers — Table 1's handover counts come from these phones).
    pub fn cell_changes(&self) -> usize {
        self.samples
            .windows(2)
            .filter(|w| {
                w.first()
                    .zip(w.get(1))
                    .map_or(false, |(a, b)| a.cell != b.cell)
            })
            .count()
    }

    /// Number of distinct cells seen.
    pub fn unique_cells(&self) -> usize {
        let mut cells: Vec<u32> = self.samples.iter().map(|s| s.cell.0).collect();
        cells.sort_unstable();
        cells.dedup();
        cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_geo::region::RegionKind;
    use wheels_geo::timezone::Timezone;

    fn snap(t: f64, od: f64, cell: u32, tech: Technology) -> LinkSnapshot {
        LinkSnapshot {
            time_s: t,
            odometer_m: od,
            speed_mps: 20.0,
            region: RegionKind::Highway,
            timezone: Timezone::Central,
            tech,
            cell: CellId(cell),
            outage: false,
            rsrp_dbm: -100.0,
            sinr_dl_db: 10.0,
            sinr_ul_db: 8.0,
            mcs_dl: 10,
            mcs_ul: 8,
            bler: 0.1,
            ca_dl: 1,
            ca_ul: 1,
            cap_dl_mbps: 50.0,
            cap_ul_mbps: 10.0,
            in_handover: false,
            handover: None,
        }
    }

    #[test]
    fn tech_shares_distance_weighted() {
        let mut log = PassiveLogger::new();
        // 1 km on LTE, 3 km on LTE-A.
        log.log(&snap(0.0, 0.0, 1, Technology::Lte), -100.0);
        log.log(&snap(60.0, 1_000.0, 2, Technology::LteA), -100.0);
        log.log(&snap(240.0, 4_000.0, 2, Technology::LteA), -100.0);
        let shares = log.tech_shares();
        assert!((shares[0].1 - 0.25).abs() < 1e-9);
        assert!((shares[1].1 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn counts_cell_changes_and_unique_cells() {
        let mut log = PassiveLogger::new();
        for (i, cell) in [1u32, 1, 2, 2, 3, 1].iter().enumerate() {
            log.log(&snap(i as f64, i as f64 * 100.0, *cell, Technology::Lte), -100.0);
        }
        assert_eq!(log.cell_changes(), 3);
        assert_eq!(log.unique_cells(), 3);
    }

    #[test]
    fn truncate_and_window_drop_count_losses() {
        let mut log = PassiveLogger::new();
        for i in 0..10 {
            log.log(&snap(i as f64, i as f64 * 100.0, 1, Technology::Lte), -100.0);
        }
        assert_eq!(log.drop_window(3.0, 5.0), 3, "samples at t = 3, 4, 5");
        assert_eq!(log.samples().len(), 7);
        assert_eq!(log.truncate_after(6.5), 3, "samples at t = 7, 8, 9");
        assert_eq!(log.samples().len(), 4);
        assert_eq!(log.truncate_after(100.0), 0);
    }

    #[test]
    fn empty_log_is_safe() {
        let log = PassiveLogger::new();
        assert_eq!(log.cell_changes(), 0);
        assert_eq!(log.unique_cells(), 0);
        let shares = log.tech_shares();
        assert!(shares.iter().all(|(_, f)| *f == 0.0));
    }
}
