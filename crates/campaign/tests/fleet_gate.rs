//! Fleet-axis gates: the `population: 0` strict no-op, `--jobs`
//! byte-identity of fleet-enabled campaigns, and the checkpoint
//! compatibility contract — a pre-fleet checkpoint log hashes to a
//! different world and must be rejected as foreign with accurate resume
//! accounting, never silently restored into a fleet run.

use std::fs;
use std::path::PathBuf;

use wheels_campaign::checkpoint::world_hash;
use wheels_campaign::{
    Campaign, CampaignConfig, CheckpointOptions, ScenarioSpec, SubscriberSpec,
};
use wheels_xcal::export;

/// Tiny but fully representative config: all three unit kinds run.
fn tiny(seed: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig::quick_network_only(seed);
    cfg.scale = 0.02;
    cfg.passive_tick_s = 30.0;
    cfg
}

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn population_zero_is_a_strict_noop() {
    let base = Campaign::new(tiny(11))
        .run_supervised_jobs(1)
        .expect("completes");
    let mut cfg = tiny(11);
    cfg.population = Some(0);
    let zero = Campaign::new(cfg).run_supervised_jobs(1).expect("completes");
    assert!(base.fleet.is_none() && zero.fleet.is_none());
    assert_eq!(
        export::to_json(&base.db).expect("serializes"),
        export::to_json(&zero.db).expect("serializes"),
    );
}

#[test]
fn fleet_runs_are_byte_identical_across_jobs() {
    let mut cfg = tiny(42);
    cfg.population = Some(2_000);
    let campaign = Campaign::new(cfg);
    let a = campaign.run_supervised_jobs(1).expect("completes");
    let b = campaign.run_supervised_jobs(3).expect("completes");
    let fa = a.fleet.expect("fleet summary present");
    let fb = b.fleet.expect("fleet summary present");
    assert_eq!(fa.population, 2_000);
    assert_eq!(fa, fb, "fleet summary must not depend on worker count");
    assert!(fa.per_op.iter().any(|(_, s)| !s.is_empty()));
    assert_eq!(
        export::to_json(&a.db).expect("serializes"),
        export::to_json(&b.db).expect("serializes"),
    );
}

#[test]
fn fleet_calibration_changes_the_dataset() {
    // The no-op guard is strict at population 0 — and only there: an
    // actual fleet must visibly re-anchor the load the probes see.
    let base = Campaign::new(tiny(7)).run_supervised_jobs(1).expect("completes");
    let mut cfg = tiny(7);
    cfg.population = Some(2_000_000);
    let loaded = Campaign::new(cfg).run_supervised_jobs(1).expect("completes");
    assert_ne!(
        export::to_json(&base.db).expect("serializes"),
        export::to_json(&loaded.db).expect("serializes"),
        "a two-million-subscriber fleet left no trace in the dataset"
    );
}

#[test]
fn world_hash_folds_the_fleet_axis() {
    let spec = ScenarioSpec::paper();
    let cfg = tiny(11);
    let h0 = world_hash(&spec, &cfg);

    // The config population knob is part of the world identity, and
    // `Some(0)` keys a different checkpoint stream than `None` even
    // though both produce the fleetless dataset.
    let mut with_pop = cfg.clone();
    with_pop.population = Some(10_000);
    assert_ne!(h0, world_hash(&spec, &with_pop));
    let mut zero = cfg.clone();
    zero.population = Some(0);
    assert_ne!(h0, world_hash(&spec, &zero));

    // The scenario subscribers axis is part of the hashed spec JSON.
    let mut fleet_spec = ScenarioSpec::paper();
    fleet_spec.subscribers = Some(SubscriberSpec::with_population(10_000));
    assert_ne!(h0, world_hash(&fleet_spec, &cfg));

    // Why a genuine pre-fleet log is necessarily foreign: the hashed
    // spec JSON now carries the fleet axis keys, which pre-fleet JSON
    // did not have.
    let json = serde_json::to_string(&spec).expect("spec serializes");
    assert!(json.contains("\"subscribers\""));
    assert!(json.contains("\"load\""));
}

#[test]
fn pre_fleet_style_checkpoint_log_is_rejected_as_foreign() {
    // Emulate resuming a fleet campaign on top of a log written by a
    // world without the fleet axis: same seed and scale, different
    // world hash. Every record must be rejected as foreign, everything
    // recomputed, and the accounting must say exactly that.
    let dir = scratch("pre-fleet-foreign");
    let fleetless = Campaign::new(tiny(11));
    let written = fleetless
        .run_checkpointed_jobs(1, &CheckpointOptions::fresh(&dir))
        .expect("fleetless checkpointed run completes");
    assert!(written.resume.is_none());
    let unit_count = fleetless.plan_units().len();

    let mut cfg = tiny(11);
    cfg.population = Some(2_000);
    let fleet = Campaign::new(cfg);
    assert_ne!(
        fleetless.checkpoint_key().world_hash,
        fleet.checkpoint_key().world_hash,
        "fleet axis must change the world hash"
    );
    let resumed = fleet
        .run_checkpointed_jobs(1, &CheckpointOptions::resume(&dir))
        .expect("resume over a foreign log completes");
    let r = resumed.resume.as_ref().expect("resume accounting present");
    assert_eq!(r.restored_units, 0, "foreign records must not restore");
    assert_eq!(r.recomputed_units, unit_count);
    assert_eq!(r.foreign_records, unit_count, "every old record is foreign");
    assert_eq!(r.corrupt_records, 0);

    // And the recomputed run is byte-identical to a cold fleet run.
    let mut cold_cfg = tiny(11);
    cold_cfg.population = Some(2_000);
    let cold = Campaign::new(cold_cfg)
        .run_supervised_jobs(1)
        .expect("completes");
    assert_eq!(
        export::to_json(&cold.db).expect("serializes"),
        export::to_json(&resumed.db).expect("serializes"),
    );
    assert_eq!(cold.fleet, resumed.fleet);
}

#[test]
fn fleet_sketches_survive_crash_and_resume() {
    use wheels_campaign::{CampaignError, ProcessKill};
    let dir = scratch("fleet-crash-resume");
    let mut cfg = tiny(42);
    cfg.population = Some(2_000);
    let campaign = Campaign::new(cfg);
    let golden = campaign.run_supervised_jobs(1).expect("completes");

    let kill = CheckpointOptions::fresh(&dir).with_kill(ProcessKill::after_units(3));
    match campaign.run_checkpointed_jobs(1, &kill) {
        Err(CampaignError::Killed { committed }) => assert_eq!(committed, 3),
        other => panic!("expected the kill hook to fire, got {other:?}"),
    }
    let resumed = campaign
        .run_checkpointed_jobs(1, &CheckpointOptions::resume(&dir))
        .expect("resume completes");
    let r = resumed.resume.as_ref().expect("resume accounting present");
    assert_eq!(r.restored_units, 3);
    assert_eq!(
        golden.fleet, resumed.fleet,
        "fleet summary must be identical across crash + resume"
    );
    assert_eq!(
        export::to_json(&golden.db).expect("serializes"),
        export::to_json(&resumed.db).expect("serializes"),
    );
}
