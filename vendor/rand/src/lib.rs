//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the thin slice of `rand` 0.8 it actually uses: a deterministic
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64, the same family
//! the real `small_rng` feature uses on 64-bit targets), the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`SeedableRng::seed_from_u64`]. Determinism is the only contract the
//! simulation depends on — every stream is a pure function of its seed —
//! and that holds here by construction.

#![forbid(unsafe_code)]

/// Random number generator cores: sources of `u64` entropy.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: advances `*state` and returns the next output.
/// Public so stream-derivation helpers can reuse the exact finalizer.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values drawable uniformly from an `Rng` via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly samplable from a half-open or inclusive range.
///
/// Mirrors `rand::distributions::uniform::SampleUniform` closely enough
/// that the single generic [`SampleRange`] impl below keeps type inference
/// working the way callers of the real crate expect (e.g.
/// `x + rng.gen_range(-0.02..0.02)` unifies the literal with `x`'s type).
pub trait SampleUniform: Sized + PartialOrd {
    /// Draw uniformly from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64, _inclusive: bool) -> f64 {
        low + f64::draw(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32, _inclusive: bool) -> f32 {
        low + f32::draw(rng) * (high - low)
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                inclusive: bool,
            ) -> $t {
                let span = (high as i128 - low as i128 + inclusive as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range needs a non-empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range needs a non-empty range");
        T::sample_between(rng, start, end, true)
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability in [0,1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    ///
    /// Mirrors `rand::rngs::SmallRng` on 64-bit targets (same algorithm
    /// family; exact output stream is this vendored implementation's own,
    /// which is fine — the workspace only requires self-consistency).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y = r.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&y));
            let n = r.gen_range(3usize..10);
            assert!((3..10).contains(&n));
            let m = r.gen_range(0u8..=2);
            assert!(m <= 2);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "{hits}");
    }
}
