//! Cell load / scheduler-share process.
//!
//! The fraction of a cell's airtime a single UE gets depends on how many
//! other users the cell is serving, their channel quality, and backhaul —
//! none of which a drive-by UE observes. This hidden load is the dominant
//! source of throughput variance in the paper's data and the reason no
//! logged KPI correlates strongly with throughput (Table 2), including the
//! "surprisingly low" throughput seen even on high-speed 5G (§5.6).
//!
//! Model: log-share follows an AR(1) (OU) process with ~25 s decorrelation
//! around an operator/context mean, re-drawn on handover (a new cell has
//! unrelated load), plus occasional deep-congestion episodes that produce
//! the paper's heavy low-throughput tail (35 % of samples < 5 Mbps).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the load-share process.
#[derive(Debug, Clone, Copy)]
pub struct LoadParams {
    /// Median share of cell capacity the UE gets (0, 1].
    pub median_share: f64,
    /// Std-dev of the log-share.
    pub sigma: f64,
    /// Decorrelation time, seconds.
    pub tau_s: f64,
    /// Probability per second of entering a deep-congestion episode.
    pub congestion_rate: f64,
    /// Multiplier applied during congestion episodes.
    pub congestion_factor: f64,
    /// Congestion episode duration range, seconds.
    pub congestion_s: (f64, f64),
}

/// Multiplicative overrides for [`LoadParams`], exposed through the
/// scenario layer's operator tuning. Like the deployment multipliers in
/// [`crate::tuning::OperatorTuning`], the neutral scale (every factor
/// 1.0) is an exact no-op: `x * 1.0 == x` bit-for-bit in IEEE-754, and
/// every scaled field is re-clamped to a range it already occupied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadScale {
    /// Multiplier on the median scheduler share.
    pub median_scale: f64,
    /// Multiplier on the log-share standard deviation.
    pub sigma_scale: f64,
    /// Multiplier on the deep-congestion arrival rate.
    pub congestion_scale: f64,
}

impl LoadScale {
    /// The identity scale: every factor 1.0 (exact no-op).
    pub const NEUTRAL: LoadScale = LoadScale {
        median_scale: 1.0,
        sigma_scale: 1.0,
        congestion_scale: 1.0,
    };
}

impl Default for LoadScale {
    fn default() -> Self {
        Self::NEUTRAL
    }
}

impl LoadParams {
    /// Typical driving conditions: cells shared with many users.
    pub fn driving() -> Self {
        LoadParams {
            median_share: 0.34,
            sigma: 0.85,
            tau_s: 25.0,
            congestion_rate: 1.0 / 180.0,
            congestion_factor: 0.12,
            congestion_s: (5.0, 40.0),
        }
    }

    /// Static tests right next to the BS, often off-peak: better share.
    pub fn static_urban() -> Self {
        LoadParams {
            median_share: 0.58,
            sigma: 0.62,
            tau_s: 25.0,
            congestion_rate: 1.0 / 300.0,
            congestion_factor: 0.10,
            congestion_s: (5.0, 30.0),
        }
    }

    /// Apply a [`LoadScale`], re-clamping every field to its operating
    /// range. With [`LoadScale::NEUTRAL`] the result is bit-identical to
    /// `self` (multiply by 1.0, clamp over a range the value already
    /// occupies).
    pub fn scaled(&self, s: &LoadScale) -> LoadParams {
        LoadParams {
            median_share: (self.median_share * s.median_scale).clamp(0.005, 1.0),
            sigma: (self.sigma * s.sigma_scale).clamp(0.0, 3.0),
            congestion_rate: (self.congestion_rate * s.congestion_scale).clamp(0.0, 1.0),
            ..*self
        }
    }
}

/// The evolving load-share state for one (UE, direction).
#[derive(Debug, Clone)]
pub struct LoadProcess {
    params: LoadParams,
    /// Current log-share deviation from the mean.
    x: f64,
    last_t: f64,
    congested_until: f64,
    rng: SmallRng,
}

impl LoadProcess {
    /// Create a process; the initial state is drawn from the stationary
    /// distribution.
    pub fn new(params: LoadParams, seed: u64) -> Self {
        // lint:allow(D4): cell seed is derived from the UE's
        // netsim::rng stream; the salt splits the load sub-stream
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03);
        let x = gauss(&mut rng) * params.sigma;
        LoadProcess {
            params,
            x,
            last_t: f64::NEG_INFINITY,
            congested_until: f64::NEG_INFINITY,
            rng,
        }
    }

    /// Advance to time `t` (seconds, non-decreasing) and return the share
    /// in (0, 1].
    pub fn share_at(&mut self, t: f64) -> f64 {
        if self.last_t == f64::NEG_INFINITY {
            self.last_t = t;
        }
        let dt = (t - self.last_t).max(0.0);
        if dt > 0.0 {
            let rho = (-dt / self.params.tau_s).exp();
            self.x = rho * self.x
                + (1.0 - rho * rho).sqrt() * self.params.sigma * gauss(&mut self.rng);
            // Congestion arrivals.
            if t > self.congested_until {
                let p = (self.params.congestion_rate * dt).clamp(0.0, 1.0);
                if self.rng.gen_bool(p) {
                    let d = self
                        .rng
                        .gen_range(self.params.congestion_s.0..self.params.congestion_s.1);
                    self.congested_until = t + d;
                }
            }
            self.last_t = t;
        }
        let mut share = self.params.median_share * self.x.exp();
        if t <= self.congested_until {
            share *= self.params.congestion_factor;
        }
        share.clamp(0.005, 1.0)
    }

    /// Handover: the new cell's load is unrelated to the old one's.
    pub fn redraw(&mut self) {
        self.x = gauss(&mut self.rng) * self.params.sigma;
    }

    /// The configured parameters.
    pub fn params(&self) -> &LoadParams {
        &self.params
    }
}

fn gauss(rng: &mut SmallRng) -> f64 {
    let mut s = 0.0;
    for _ in 0..12 {
        s += rng.gen::<f64>();
    }
    s - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_stays_in_bounds() {
        let mut p = LoadProcess::new(LoadParams::driving(), 1);
        for i in 0..10_000 {
            let s = p.share_at(i as f64 * 0.5);
            assert!((0.005..=1.0).contains(&s));
        }
    }

    #[test]
    fn median_roughly_matches() {
        let mut p = LoadProcess::new(LoadParams::driving(), 2);
        let mut v: Vec<f64> = (0..40_000)
            .map(|i| p.share_at(i as f64 * 30.0)) // decorrelated samples
            .collect();
        v.sort_by(f64::total_cmp);
        let med = v[v.len() / 2];
        assert!((0.22..0.45).contains(&med), "median {med}");
    }

    #[test]
    fn correlated_at_short_lags() {
        let mut p = LoadProcess::new(LoadParams::driving(), 3);
        let a = p.share_at(1_000.0);
        let b = p.share_at(1_000.5);
        assert!((a.ln() - b.ln()).abs() < 1.0);
    }

    #[test]
    fn redraw_changes_state() {
        let mut p = LoadProcess::new(LoadParams::driving(), 4);
        let a = p.share_at(10.0);
        p.redraw();
        let b = p.share_at(10.0);
        // Not guaranteed different in principle, but astronomically likely.
        assert_ne!(a, b);
    }

    #[test]
    fn congestion_episodes_occur() {
        let mut p = LoadProcess::new(LoadParams::driving(), 5);
        let mut min_share: f64 = 1.0;
        for i in 0..20_000 {
            min_share = min_share.min(p.share_at(i as f64));
        }
        assert!(min_share < 0.05, "never saw deep congestion: {min_share}");
    }

    #[test]
    fn neutral_scale_is_bit_exact() {
        for base in [LoadParams::driving(), LoadParams::static_urban()] {
            let scaled = base.scaled(&LoadScale::NEUTRAL);
            assert_eq!(scaled.median_share.to_bits(), base.median_share.to_bits());
            assert_eq!(scaled.sigma.to_bits(), base.sigma.to_bits());
            assert_eq!(scaled.tau_s.to_bits(), base.tau_s.to_bits());
            assert_eq!(scaled.congestion_rate.to_bits(), base.congestion_rate.to_bits());
            assert_eq!(scaled.congestion_factor.to_bits(), base.congestion_factor.to_bits());
        }
    }

    #[test]
    fn scaled_params_move_and_clamp() {
        let base = LoadParams::driving();
        let heavy = base.scaled(&LoadScale {
            median_scale: 0.5,
            sigma_scale: 1.2,
            congestion_scale: 1000.0,
        });
        assert!(heavy.median_share < base.median_share);
        assert!(heavy.sigma > base.sigma);
        assert_eq!(heavy.congestion_rate, 1.0);
        let floor = base.scaled(&LoadScale {
            median_scale: 0.0,
            sigma_scale: 1.0,
            congestion_scale: 1.0,
        });
        assert_eq!(floor.median_share, 0.005);
    }

    #[test]
    fn static_params_have_higher_median() {
        assert!(LoadParams::static_urban().median_share > LoadParams::driving().median_share);
    }

    #[test]
    fn deterministic() {
        let mut a = LoadProcess::new(LoadParams::driving(), 9);
        let mut b = LoadProcess::new(LoadParams::driving(), 9);
        for i in 0..100 {
            assert_eq!(a.share_at(i as f64), b.share_at(i as f64));
        }
    }
}
