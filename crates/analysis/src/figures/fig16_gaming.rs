//! Fig. 16 (Verizon) / Fig. 22 (all operators): cloud gaming.

use wheels_ran::operator::Operator;
use wheels_xcal::database::{TestKind, TestRecord};

use crate::ecdf::Ecdf;
use crate::index::AnalysisIndex;
use crate::render::{cdf_header, cdf_row};
use crate::stats::pearson;

/// One operator's cloud-gaming results.
#[derive(Debug, Clone)]
pub struct OpGamingResults {
    /// Operator.
    pub op: Operator,
    /// Per-session send bitrate (Mbps), driving.
    pub bitrate: Ecdf,
    /// Per-session network latency (ms), driving.
    pub latency: Ecdf,
    /// Per-session frame-drop fraction, driving.
    pub frame_drop: Ecdf,
    /// Best static bitrate (Mbps).
    pub best_static_bitrate: Option<f64>,
    /// Pearson r between handover count and frame-drop fraction.
    pub ho_drop_corr: f64,
}

/// Fig. 16 data.
#[derive(Debug, Clone)]
pub struct GamingResults {
    /// Per-operator results.
    pub per_op: Vec<OpGamingResults>,
}

fn sessions<'a>(
    ix: &'a AnalysisIndex<'a>,
    op: Operator,
    is_static: bool,
) -> impl Iterator<Item = &'a TestRecord> + 'a {
    ix.records(op, TestKind::AppGaming, is_static)
}

/// Compute gaming results from the index's record partitions.
pub fn compute(ix: &AnalysisIndex<'_>) -> GamingResults {
    let per_op = ix
        .ops()
        .iter()
        .map(|&op| {
            let bitrate = Ecdf::new(
                sessions(ix, op, false)
                    .filter_map(|r| r.app.as_ref()?.send_bitrate_mbps.map(f64::from)),
            );
            let latency = Ecdf::new(
                sessions(ix, op, false)
                    .filter_map(|r| r.app.as_ref()?.net_latency_ms.map(f64::from)),
            );
            let frame_drop = Ecdf::new(
                sessions(ix, op, false)
                    .filter_map(|r| r.app.as_ref()?.frame_drop_frac.map(f64::from)),
            );
            let best_static_bitrate = sessions(ix, op, true)
                .filter_map(|r| r.app.as_ref()?.send_bitrate_mbps.map(f64::from))
                .fold(None, |m: Option<f64>, v| Some(m.map_or(v, |m| m.max(v))));
            let pairs: Vec<(f64, f64)> = sessions(ix, op, false)
                .filter_map(|r| {
                    Some((
                        r.handovers.len() as f64,
                        r.app.as_ref()?.frame_drop_frac? as f64,
                    ))
                })
                .collect();
            let ho_drop_corr = pearson(
                &pairs.iter().map(|p| p.0).collect::<Vec<_>>(),
                &pairs.iter().map(|p| p.1).collect::<Vec<_>>(),
            );
            OpGamingResults {
                op,
                bitrate,
                latency,
                frame_drop,
                best_static_bitrate,
                ho_drop_corr,
            }
        })
        .collect();
    GamingResults { per_op }
}

impl GamingResults {
    /// Results for one operator.
    pub fn for_op(&self, op: Operator) -> &OpGamingResults {
        self.per_op
            .iter()
            .find(|p| p.op == op)
            .expect("all operators computed")
    }

    /// Render the figure.
    pub fn render(&self) -> String {
        let mut out = cdf_header("Fig. 16/22 — cloud gaming (per session)");
        out.push('\n');
        for p in &self.per_op {
            out.push_str(&cdf_row(&format!("{} bitrate (Mbps)", p.op.code()), &p.bitrate));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} latency (ms)", p.op.code()), &p.latency));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} frame drop", p.op.code()), &p.frame_drop));
            out.push('\n');
            out.push_str(&format!(
                "  {} best static bitrate {:?} Mbps | r(HOs, drops)={:+.2}\n",
                p.op.code(),
                p.best_static_bitrate.map(|v| v.round()),
                p.ho_drop_corr
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::small_ix;

    #[test]
    fn driving_bitrate_collapses_vs_static() {
        // §7.3: median 17.5 Mbps driving vs 98.5 static.
        let f = compute(small_ix());
        let p = f.for_op(Operator::Verizon);
        if let Some(best) = p.best_static_bitrate {
            assert!(best > 60.0, "best static bitrate {best}");
            assert!(
                p.bitrate.median() < best * 0.6,
                "driving {} vs static {}",
                p.bitrate.median(),
                best
            );
        }
    }

    #[test]
    fn latency_always_above_static_floor() {
        // §7.3: driving latency always > 17 ms.
        let f = compute(small_ix());
        for op in Operator::ALL {
            let e = &f.for_op(op).latency;
            if e.is_empty() {
                continue;
            }
            assert!(e.min() > 17.0, "{op}: min latency {}", e.min());
        }
    }

    #[test]
    fn frame_drops_typically_low() {
        // §7.3: median drop rate ~1.6 %, max 13.2 % — the adapter
        // sacrifices latency to protect frames.
        let f = compute(small_ix());
        for op in Operator::ALL {
            let e = &f.for_op(op).frame_drop;
            if e.len() < 10 {
                continue;
            }
            assert!(e.median() < 0.08, "{op}: median drop {}", e.median());
        }
    }

    #[test]
    fn no_handover_correlation() {
        let f = compute(small_ix());
        for op in Operator::ALL {
            let p = f.for_op(op);
            if p.frame_drop.len() < 30 {
                continue; // too few sessions at fixture scale
            }
            assert!(p.ho_drop_corr.abs() < 0.55, "{op}");
        }
    }
}
