//! Mergeable fixed-size summaries of subscriber-population load.
//!
//! ## Design rules
//!
//! * **Integer domain.** Every accumulator is a `u64`. Real-valued
//!   observations (utilization, fractional hour spans) are converted to
//!   fixed point exactly once, inside [`CellHourObs`] construction or
//!   [`FleetUnitSketch::observe`], by a pure function of the observation
//!   alone. Merging never touches floating point, so it is exactly
//!   associative and commutative.
//! * **Fixed shape.** A sketch's size depends only on the number of cells
//!   an operator deploys — never on the population — so memory stays
//!   bounded at 10^6 subscribers.
//! * **Render-time floats.** Means and quantiles are derived from the
//!   merged integers only when a report is rendered.
//!
//! Fixed-point conventions: `*_micro` fields carry millionths (1e-6),
//! `*_milli` fields thousandths (1e-3). Utilization is clamped to
//! [`UTIL_CLAMP`] before conversion so a pathological overload cannot
//! overflow the accumulators.

use serde::{Deserialize, Serialize};

/// Number of fixed histogram bins over utilization `[0, 1]`.
pub const LOAD_BINS: usize = 32;
/// Number of technology slots (mirrors `Technology::ALL`).
pub const TECH_SLOTS: usize = 5;
/// Hours in the diurnal cycle.
pub const HOURS_PER_DAY: usize = 24;
/// Flattened per-(tech × hour-of-day) slot count. The vendored serde has
/// no fixed-size-array impls, so the table is a length-checked `Vec`.
pub const TECH_HOUR_SLOTS: usize = TECH_SLOTS * HOURS_PER_DAY;
/// Fixed-point scale for `*_micro` fields.
pub const MICRO: u64 = 1_000_000;
/// Utilization ceiling before fixed-point conversion.
pub const UTIL_CLAMP: f64 = 8.0;

/// Histogram bin index for a utilization value: 32 linear bins over
/// `[0, 1]`, with everything at or above 1 (overload) in the last bin.
/// A pure function of the value, so binning is order-independent.
pub fn load_bin(util: f64) -> usize {
    let u = util.clamp(0.0, 1.0);
    ((u * LOAD_BINS as f64) as usize).min(LOAD_BINS - 1)
}

/// Accumulator for one (technology × hour-of-day) slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TechHourAcc {
    /// Active subscriber-hours × 1e6.
    pub sub_hours_micro: u64,
    /// Σ over cell-hour observations of `min(util, UTIL_CLAMP)` × 1e3,
    /// weighted by the observed span.
    pub util_milli_hours: u64,
    /// Observed cell-hours × 1e6 (the weight behind `util_milli_hours`).
    pub cell_hours_micro: u64,
}

impl TechHourAcc {
    /// Fold another accumulator into this one (exact integer adds).
    pub fn merge(&mut self, other: &TechHourAcc) {
        self.sub_hours_micro += other.sub_hours_micro;
        self.util_milli_hours += other.util_milli_hours;
        self.cell_hours_micro += other.cell_hours_micro;
    }

    /// Mean utilization over the observed cell-hours (render-time only).
    pub fn mean_util(&self) -> f64 {
        if self.cell_hours_micro == 0 {
            return 0.0;
        }
        (self.util_milli_hours as f64 / 1e3) / (self.cell_hours_micro as f64 / MICRO as f64)
    }
}

/// Per-cell accumulator: who lives on the cell and how loaded it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellAcc {
    /// Cell identifier (the RAN's `CellId` payload).
    pub cell: u32,
    /// Technology slot index (`Technology::ALL` order).
    pub tech: u8,
    /// Subscribers attached to the cell. The attachment process is a
    /// function of the world seed alone, so every unit that sees the cell
    /// reports the same count — merge takes the max, which is then also
    /// idempotent.
    pub subs: u64,
    /// Σ `min(util, UTIL_CLAMP)` × 1e3, span-weighted.
    pub util_milli_hours: u64,
    /// Observed hours × 1e6.
    pub hours_micro: u64,
}

/// One cell-hour observation, already converted to fixed point. The
/// conversion is a pure function of the inputs, so two units observing
/// disjoint hour spans of the same cell contribute exactly additive
/// integers.
#[derive(Debug, Clone, Copy)]
pub struct CellHourObs {
    /// Cell identifier.
    pub cell: u32,
    /// Technology slot index.
    pub tech: u8,
    /// Hour of day, `0..24`.
    pub hour_of_day: u8,
    /// Subscribers attached to the cell.
    pub subs: u64,
    /// Active subscriber-hours contributed by this observation, × 1e6.
    pub active_micro: u64,
    /// Utilization over the observed span (pre-clamp).
    pub util: f64,
    /// Observed span as a fraction of an hour, × 1e6.
    pub span_micro: u64,
}

impl CellHourObs {
    /// Span-weighted utilization in milli units — the single
    /// float→integer conversion for this observation.
    fn util_milli_span(&self) -> u64 {
        let u = self.util.clamp(0.0, UTIL_CLAMP);
        (u * 1e3 * (self.span_micro as f64 / MICRO as f64)).round() as u64
    }
}

/// Fixed-bin histogram of utilization, weighted by observed span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadHistogram {
    /// `LOAD_BINS` counters of span-micro weight.
    pub bins: Vec<u64>,
}

impl Default for LoadHistogram {
    fn default() -> Self {
        LoadHistogram { bins: vec![0; LOAD_BINS] }
    }
}

impl LoadHistogram {
    /// Empty histogram (merge identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `weight` to the bin holding `util`.
    pub fn observe(&mut self, util: f64, weight: u64) {
        self.bins[load_bin(util)] += weight;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LoadHistogram) {
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
    }

    /// Total weight across all bins.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Quantile `q` in `[0, 1]` as a bin-midpoint utilization
    /// (render-time only; 0 for an empty histogram).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.bins.iter().enumerate() {
            cum += b;
            if cum >= target {
                return (i as f64 + 0.5) / LOAD_BINS as f64;
            }
        }
        1.0
    }
}

/// The streaming summary one campaign work unit produces for one
/// operator's population, mergeable with any other unit's sketch of the
/// same operator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetUnitSketch {
    /// Subscribers attached to this operator (max-merged; every unit
    /// derives the same value from the world seed).
    pub population: u64,
    /// Total active subscriber-hours × 1e6 across the observed span.
    pub sub_hours_micro: u64,
    /// Flattened `tech * 24 + hour_of_day` accumulators,
    /// `TECH_HOUR_SLOTS` long.
    pub tech_hour: Vec<TechHourAcc>,
    /// Per-cell accumulators, sorted by ascending cell id.
    pub cells: Vec<CellAcc>,
    /// Span-weighted utilization histogram over cell-hours.
    pub hist: LoadHistogram,
}

impl Default for FleetUnitSketch {
    fn default() -> Self {
        Self::empty()
    }
}

impl FleetUnitSketch {
    /// The merge identity: observes nothing.
    pub fn empty() -> Self {
        FleetUnitSketch {
            population: 0,
            sub_hours_micro: 0,
            tech_hour: vec![TechHourAcc::default(); TECH_HOUR_SLOTS],
            cells: Vec::new(),
            hist: LoadHistogram::new(),
        }
    }

    /// Has this sketch observed anything at all?
    pub fn is_empty(&self) -> bool {
        self.population == 0 && self.sub_hours_micro == 0 && self.cells.is_empty()
    }

    /// Fold one cell-hour observation into the sketch. `cells` stays
    /// sorted: observations for one unit arrive cell-major in id order,
    /// so the common case is an append or an update of the last entry.
    pub fn observe(&mut self, obs: &CellHourObs) {
        let util_milli_span = obs.util_milli_span();
        self.sub_hours_micro += obs.active_micro;
        let slot = obs.tech as usize * HOURS_PER_DAY + obs.hour_of_day as usize;
        let th = &mut self.tech_hour[slot];
        th.sub_hours_micro += obs.active_micro;
        th.util_milli_hours += util_milli_span;
        th.cell_hours_micro += obs.span_micro;
        self.hist.observe(obs.util, obs.span_micro);

        let pos = match self.cells.binary_search_by_key(&obs.cell, |c| c.cell) {
            Ok(i) => i,
            Err(i) => {
                self.cells.insert(
                    i,
                    CellAcc {
                        cell: obs.cell,
                        tech: obs.tech,
                        subs: obs.subs,
                        util_milli_hours: 0,
                        hours_micro: 0,
                    },
                );
                i
            }
        };
        let c = &mut self.cells[pos];
        c.subs = c.subs.max(obs.subs);
        c.util_milli_hours += util_milli_span;
        c.hours_micro += obs.span_micro;
    }

    /// Fold another sketch of the same operator into this one. All
    /// accumulators are exact `u64` adds (`population`/`subs` are
    /// max-merged, see [`CellAcc::subs`]), so the operation is
    /// associative and commutative, with [`FleetUnitSketch::empty`] as
    /// identity.
    pub fn merge(&mut self, other: &FleetUnitSketch) {
        self.population = self.population.max(other.population);
        self.sub_hours_micro += other.sub_hours_micro;
        for (a, b) in self.tech_hour.iter_mut().zip(&other.tech_hour) {
            a.merge(b);
        }
        self.hist.merge(&other.hist);

        // Merge-union of two id-sorted cell lists.
        let mut merged = Vec::with_capacity(self.cells.len().max(other.cells.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.cells.len() && j < other.cells.len() {
            let (a, b) = (self.cells[i], other.cells[j]);
            if a.cell < b.cell {
                merged.push(a);
                i += 1;
            } else if b.cell < a.cell {
                merged.push(b);
                j += 1;
            } else {
                merged.push(CellAcc {
                    cell: a.cell,
                    tech: a.tech,
                    subs: a.subs.max(b.subs),
                    util_milli_hours: a.util_milli_hours + b.util_milli_hours,
                    hours_micro: a.hours_micro + b.hours_micro,
                });
                i += 1;
                j += 1;
            }
        }
        merged.extend_from_slice(&self.cells[i..]);
        merged.extend_from_slice(&other.cells[j..]);
        self.cells = merged;
    }

    /// Total active subscriber-hours (render-time).
    pub fn sub_hours(&self) -> f64 {
        self.sub_hours_micro as f64 / MICRO as f64
    }

    /// Active subscriber-hours attributed to one technology slot
    /// (render-time).
    pub fn tech_sub_hours(&self, tech: usize) -> f64 {
        self.tech_hour[tech * HOURS_PER_DAY..(tech + 1) * HOURS_PER_DAY]
            .iter()
            .map(|a| a.sub_hours_micro)
            .sum::<u64>() as f64
            / MICRO as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(cell: u32, hour: u8, util: f64) -> CellHourObs {
        CellHourObs {
            cell,
            tech: (cell % TECH_SLOTS as u32) as u8,
            hour_of_day: hour,
            subs: 40 + cell as u64,
            active_micro: 37_000_000 + cell as u64,
            util,
            span_micro: MICRO,
        }
    }

    #[test]
    fn empty_is_merge_identity() {
        let mut s = FleetUnitSketch::empty();
        s.observe(&obs(3, 7, 0.4));
        s.observe(&obs(9, 8, 1.7));
        let mut left = FleetUnitSketch::empty();
        left.merge(&s);
        let mut right = s.clone();
        right.merge(&FleetUnitSketch::empty());
        assert_eq!(left, s);
        assert_eq!(right, s);
    }

    #[test]
    fn observe_then_merge_equals_observe_all() {
        let all: Vec<CellHourObs> =
            (0..40).map(|i| obs(i % 7, (i % 24) as u8, i as f64 / 13.0)).collect();
        let mut whole = FleetUnitSketch::empty();
        for o in &all {
            whole.observe(o);
        }
        for split in [1usize, 13, 39] {
            let (left, right) = all.split_at(split);
            let mut a = FleetUnitSketch::empty();
            for o in left {
                a.observe(o);
            }
            let mut b = FleetUnitSketch::empty();
            for o in right {
                b.observe(o);
            }
            a.merge(&b);
            assert_eq!(a, whole, "split at {split}");
        }
    }

    #[test]
    fn histogram_quantiles_bracket_the_mass() {
        let mut h = LoadHistogram::new();
        for i in 0..100 {
            h.observe(i as f64 / 100.0, 1);
        }
        assert!(h.quantile(0.0) < h.quantile(0.5));
        assert!(h.quantile(0.5) < h.quantile(0.99));
        assert!((h.quantile(0.5) - 0.5).abs() < 0.05);
        assert_eq!(LoadHistogram::new().quantile(0.5), 0.0);
    }

    #[test]
    fn overload_lands_in_last_bin() {
        assert_eq!(load_bin(7.5), LOAD_BINS - 1);
        assert_eq!(load_bin(1.0), LOAD_BINS - 1);
        assert_eq!(load_bin(0.0), 0);
        assert_eq!(load_bin(-0.5), 0);
    }

    #[test]
    fn sketch_round_trips_through_json() {
        let mut s = FleetUnitSketch::empty();
        s.population = 1234;
        s.observe(&obs(5, 3, 0.8));
        let json = serde_json::to_string(&s).unwrap();
        let back: FleetUnitSketch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
