//! D9 must fire: RNG-domain provenance violations. A `DOMAIN_*`
//! constant declared outside `netsim::rng`, a pinned-arity domain keyed
//! with the wrong word count, and one domain keyed with two different
//! arities at two sites — any of these silently aliases or splits a
//! random stream.

/// Declared here instead of in the one declaring module: a second
/// source of domain constants means collisions can't be audited.
pub const DOMAIN_ROGUE: u64 = 0x524F_4755_4531_0001;

fn derive_seed(_campaign_seed: u64, _domain: u64, _words: &[u64]) -> u64 {
    0
}

pub fn phone_stream(seed: u64, op: u64) -> u64 {
    // DOMAIN_PHONE is pinned at arity 2 ([operator, day]); keying with
    // one word aliases every day onto the same stream.
    derive_seed(seed, DOMAIN_PHONE, &[op])
}

pub fn rogue_a(seed: u64, op: u64) -> u64 {
    derive_seed(seed, DOMAIN_ROGUE, &[op])
}

pub fn rogue_b(seed: u64, op: u64, day: u64) -> u64 {
    // Same domain, different key arity than `rogue_a`: the two sites
    // disagree about what identifies a draw.
    derive_seed(seed, DOMAIN_ROGUE, &[op, day])
}

pub const DOMAIN_PHONE: u64 = 0x5048_4F4E_4531_0001;
