//! The scenario layer's load-bearing invariant: compiling the campaign
//! world from `ScenarioSpec::paper()` must reproduce the hard-wired
//! direct constructors byte for byte, and specs must survive a JSON
//! round trip without changing the campaign they describe.

use wheels_campaign::{Campaign, CampaignConfig, ScenarioSpec};

fn small_cfg(seed: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig::full(seed);
    cfg.scale = 0.02;
    cfg.passive_tick_s = 10.0;
    cfg
}

#[test]
fn paper_spec_output_is_byte_identical_to_direct_path() {
    for seed in [11u64, 42] {
        let direct = Campaign::new(small_cfg(seed)).run();
        let spec = Campaign::from_spec(&ScenarioSpec::paper(), small_cfg(seed)).run();
        let a = wheels_xcal::export::to_json(&direct).expect("direct serializes");
        let b = wheels_xcal::export::to_json(&spec).expect("spec serializes");
        assert!(a == b, "seed {seed}: spec-compiled paper world diverged from direct path");
    }
}

#[test]
fn specs_survive_json_round_trip() {
    for spec in ScenarioSpec::registry() {
        let json = serde_json::to_string(&spec).expect("spec serializes");
        let back: ScenarioSpec = serde_json::from_str(&json).expect("spec deserializes");
        assert_eq!(spec, back, "{} changed across the round trip", spec.name);
        back.validate().expect("round-tripped spec validates");
    }
}

#[test]
fn round_tripped_spec_runs_identical_campaign() {
    // The property behind `--scenario FILE.json`: a spec that went
    // through JSON drives the exact same campaign as the original.
    for spec in ScenarioSpec::registry() {
        let json = serde_json::to_string(&spec).expect("spec serializes");
        let back: ScenarioSpec = serde_json::from_str(&json).expect("spec deserializes");
        let mut cfg = CampaignConfig::quick_network_only(9);
        cfg.scale = 0.01;
        cfg.passive_tick_s = 30.0;
        let a = Campaign::from_spec(&spec, cfg.clone()).run();
        let b = Campaign::from_spec(&back, cfg).run();
        let a = wheels_xcal::export::to_json(&a).expect("original serializes");
        let b = wheels_xcal::export::to_json(&b).expect("round-tripped serializes");
        assert!(a == b, "{}: round-tripped spec ran a different campaign", spec.name);
    }
}
