//! Property tests for the geographic substrate.

use proptest::prelude::*;

use wheels_geo::coord::LatLon;
use wheels_geo::region::RegionKind;
use wheels_geo::route::Route;
use wheels_geo::timezone::Timezone;
use wheels_geo::trip::DrivePlan;
use wheels_geo::{mph_to_mps, mps_to_mph, SpeedBin};

/// Plans are expensive to generate; cache the four seeds the tests use.
fn cached_plan(seed: u64) -> &'static DrivePlan {
    use std::sync::OnceLock;
    static PLANS: OnceLock<Vec<DrivePlan>> = OnceLock::new();
    &PLANS.get_or_init(|| (0..4).map(DrivePlan::cross_country).collect())[seed as usize % 4]
}

proptest! {
    #[test]
    fn bearing_in_range(lat1 in -80.0f64..80.0, lon1 in -179.0f64..179.0,
                        lat2 in -80.0f64..80.0, lon2 in -179.0f64..179.0) {
        let a = LatLon::new(lat1, lon1);
        let b = LatLon::new(lat2, lon2);
        let brg = a.bearing_deg(&b);
        prop_assert!((0.0..360.0).contains(&brg));
    }

    #[test]
    fn destination_distance_consistent(lat in -70.0f64..70.0, lon in -170.0f64..170.0,
                                       brg in 0.0f64..360.0, d in 1.0f64..500_000.0) {
        let a = LatLon::new(lat, lon);
        let b = a.destination(brg, d);
        let back = a.haversine_m(&b);
        prop_assert!((back - d).abs() < d * 0.01 + 1.0, "{back} vs {d}");
    }

    #[test]
    fn speed_conversion_roundtrip(mph in 0.0f64..200.0) {
        prop_assert!((mps_to_mph(mph_to_mps(mph)) - mph).abs() < 1e-9);
    }

    #[test]
    fn speed_bins_partition(mph in 0.0f64..200.0) {
        // Every speed lands in exactly one bin, and bins are ordered.
        let bin = SpeedBin::from_mph(mph);
        match bin {
            SpeedBin::Low => prop_assert!(mph < 20.0),
            SpeedBin::Mid => prop_assert!((20.0..60.0).contains(&mph)),
            SpeedBin::High => prop_assert!(mph >= 60.0),
        }
    }

    #[test]
    fn region_classification_total(d in 0.0f64..500_000.0, scale in 0.1f64..2.0) {
        // classify() is total and returns a known region.
        let r = RegionKind::classify(d, scale);
        prop_assert!(RegionKind::ALL.contains(&r));
    }

    #[test]
    fn timezone_monotone_in_longitude(lon1 in -125.0f64..-65.0, lon2 in -125.0f64..-65.0) {
        let (w, e) = if lon1 <= lon2 { (lon1, lon2) } else { (lon2, lon1) };
        prop_assert!(Timezone::from_longitude(w) <= Timezone::from_longitude(e));
    }

    #[test]
    fn route_odometer_monotone(seeds in prop::collection::vec(0.0f64..5_711_000.0, 2..20)) {
        let route = Route::cross_country();
        let mut ods: Vec<f64> = seeds;
        ods.sort_by(f64::total_cmp);
        for w in ods.windows(2) {
            let a = route.point_at(w[0]);
            let b = route.point_at(w[1]);
            prop_assert!(b.odometer_m >= a.odometer_m);
        }
    }

    #[test]
    fn drive_plan_state_total_and_bounded(seed in 0u64..64, t in 0.0f64..9.0*86_400.0) {
        let plan = cached_plan(seed);
        let s = plan.state_at(t);
        prop_assert!(s.odometer_m >= 0.0);
        prop_assert!(s.odometer_m <= plan.route().total_m() + 1.0);
        prop_assert!(s.speed_mps >= 0.0);
        prop_assert!((0..8).contains(&s.day));
    }

    #[test]
    fn time_at_odometer_inverts_state_at(seed in 0u64..4, od in 0.0f64..5_700_000.0) {
        let plan = cached_plan(seed);
        if let Some(t) = plan.time_at_odometer(od) {
            let s = plan.state_at(t);
            // Within one second of driving (≤ ~40 m).
            prop_assert!(s.odometer_m + 45.0 >= od, "{} vs {}", s.odometer_m, od);
        }
    }
}
