//! Glue between the RAN simulator and the network/app tests.
//!
//! [`LinkDriver`] steps one UE lazily along the drive at a fixed cadence,
//! caching the latest [`LinkSnapshot`] so that a TCP flow ticking at 20 ms
//! or an AR app sampling per frame re-uses the 100 ms RAN state instead of
//! advancing it. It also collects every snapshot and handover for the
//! test's XCAL record.

use wheels_apps::{AppLink, LinkObs};
use wheels_geo::timezone::Timezone;
use wheels_geo::trip::{DrivePlan, DriveState};
use wheels_netsim::rtt::{radio_rtt_ms, RttModel};
use wheels_netsim::server::Server;
use wheels_ran::handover::HandoverEvent;
use wheels_ran::policy::TrafficDemand;
use wheels_ran::ue::{LinkSnapshot, UeRadio};
use wheels_ran::Direction;

/// Lazily advancing link state for one test.
pub struct LinkDriver<'a> {
    ue: &'a mut UeRadio,
    plan: &'a DrivePlan,
    demand: TrafficDemand,
    tick_s: f64,
    /// Precomputed vehicle state for static tests: the UE only reads the
    /// position-derived fields (odometer / region / speed / timezone), all
    /// constant at a fixed site, so one template replaces a `state_at`
    /// interpolation per cadence step.
    static_state: Option<DriveState>,
    last: Option<LinkSnapshot>,
    next_step_t: f64,
    /// All snapshots taken during the test.
    pub snapshots: Vec<LinkSnapshot>,
    /// All handovers executed during the test.
    pub handovers: Vec<HandoverEvent>,
}

impl<'a> LinkDriver<'a> {
    /// Driver for a driving test.
    pub fn driving(
        ue: &'a mut UeRadio,
        plan: &'a DrivePlan,
        demand: TrafficDemand,
        tick_s: f64,
    ) -> Self {
        LinkDriver {
            ue,
            plan,
            demand,
            tick_s,
            static_state: None,
            last: None,
            next_step_t: f64::NEG_INFINITY,
            snapshots: Vec::new(),
            handovers: Vec::new(),
        }
    }

    /// Driver for a static test at a fixed odometer position.
    pub fn static_at(
        ue: &'a mut UeRadio,
        plan: &'a DrivePlan,
        demand: TrafficDemand,
        tick_s: f64,
        odometer_m: f64,
    ) -> Self {
        let pt = plan.route().point_at(odometer_m);
        let template = DriveState {
            time_s: 0.0,
            odometer_m,
            speed_mps: 0.0,
            pos: pt.pos,
            bearing_deg: pt.bearing_deg,
            region: plan.route().region_at(odometer_m),
            timezone: Timezone::from_longitude(pt.pos.lon),
            day: 0,
            driving: false,
        };
        LinkDriver {
            static_state: Some(template),
            ..Self::driving(ue, plan, demand, tick_s)
        }
    }

    /// Adopt a recycled snapshot buffer (cleared first) as this driver's
    /// backing storage. Campaign units run hundreds of tests back to
    /// back; threading one scratch buffer through them replaces a
    /// grow-from-empty `Vec` per test with a single long-lived
    /// allocation.
    pub fn reusing(mut self, mut scratch: Vec<LinkSnapshot>) -> Self {
        scratch.clear();
        self.snapshots = scratch;
        self
    }

    /// The snapshot in effect at absolute time `t_s`, advancing the UE if
    /// the cadence interval has elapsed.
    pub fn at(&mut self, t_s: f64) -> LinkSnapshot {
        if let Some(last) = self.last {
            if t_s < self.next_step_t {
                return last;
            }
        }
        let state = match self.static_state {
            Some(mut tpl) => {
                tpl.time_s = t_s;
                tpl
            }
            None => self.plan.state_at(t_s),
        };
        let snap = self.ue.step(t_s, &state, self.demand);
        if let Some(ev) = snap.handover {
            self.handovers.push(ev);
        }
        self.snapshots.push(snap);
        self.last = Some(snap);
        self.next_step_t = t_s + self.tick_s;
        snap
    }

    /// Fraction of snapshots on high-speed 5G (Fig. 10's x-axis).
    pub fn frac_hs5g(&self) -> f64 {
        if self.snapshots.is_empty() {
            return 0.0;
        }
        self.snapshots
            .iter()
            .filter(|s| s.tech.is_high_speed())
            .count() as f64
            / self.snapshots.len() as f64
    }
}

/// Base RTT (seconds) for the fluid TCP model: wired path + radio access.
/// Stochastic spikes live in [`RttModel`] and apply to ping tests; TCP's
/// queueing delay is produced by the flow's own buffer.
pub fn tcp_base_rtt_s(snap: &LinkSnapshot, pos: wheels_geo::coord::LatLon, server: &Server) -> f64 {
    (RttModel::wired_ms(pos, server) + radio_rtt_ms(snap.tech)) / 1_000.0
}

/// [`AppLink`] adapter: exposes the RAN capacity and an RTT sample stream
/// to the killer apps. TCP-level goodput is approximated as a fixed
/// efficiency off the link capacity — the apps' own pipelines dominate.
pub struct AppLinkAdapter<'a, 'b> {
    /// The underlying link driver.
    pub driver: &'b mut LinkDriver<'a>,
    /// RTT model (per-phone).
    pub rtt: &'b mut RttModel,
    /// Server in use.
    pub server: Server,
    /// TCP efficiency factor applied to raw capacity.
    pub efficiency: f64,
}

impl AppLink for AppLinkAdapter<'_, '_> {
    fn sample(&mut self, t_s: f64) -> LinkObs {
        let snap = self.driver.at(t_s);
        let pos = match &self.driver.static_state {
            Some(tpl) => tpl.pos,
            None => self.driver.plan.pos_at(t_s),
        };
        let rtt_ms = self.rtt.sample_ms(
            t_s,
            pos,
            &self.server,
            snap.tech,
            snap.sinr_dl_db,
            snap.speed_mps,
            snap.in_handover,
        );
        LinkObs {
            dl_mbps: snap.cap_dl_mbps * self.efficiency,
            ul_mbps: snap.cap_ul_mbps * self.efficiency,
            rtt_ms,
            in_handover: snap.in_handover,
        }
    }
}

/// Demand presented to the network by each test kind.
pub fn demand_for(kind: wheels_xcal::TestKind) -> TrafficDemand {
    use wheels_xcal::TestKind::*;
    match kind {
        ThroughputDl | AppVideo | AppGaming => TrafficDemand::Backlog(Direction::Downlink),
        ThroughputUl | AppAr | AppCav => TrafficDemand::Backlog(Direction::Uplink),
        Rtt => TrafficDemand::Ping,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wheels_ran::deployment::build_cells;
    use wheels_ran::operator::Operator;
    use wheels_ran::ue::UeParams;

    fn setup() -> (DrivePlan, UeRadio) {
        let plan = DrivePlan::cross_country(3);
        let db = Arc::new(build_cells(plan.route(), Operator::TMobile, 3, 0));
        let ue = UeRadio::new(Operator::TMobile, db, UeParams::default(), 17);
        (plan, ue)
    }

    #[test]
    fn driver_caches_within_tick() {
        let (plan, mut ue) = setup();
        let t0 = plan.days()[0].start_time_s as f64;
        let mut d = LinkDriver::driving(
            &mut ue,
            &plan,
            TrafficDemand::Backlog(Direction::Downlink),
            0.1,
        );
        let a = d.at(t0);
        let b = d.at(t0 + 0.05); // within the tick: cached
        assert_eq!(a.time_s, b.time_s);
        let c = d.at(t0 + 0.2);
        assert!(c.time_s > a.time_s);
        assert_eq!(d.snapshots.len(), 2);
    }

    #[test]
    fn static_driver_pins_position() {
        let (plan, mut ue) = setup();
        let t0 = plan.days()[0].start_time_s as f64;
        let mut d = LinkDriver::static_at(
            &mut ue,
            &plan,
            TrafficDemand::Backlog(Direction::Downlink),
            0.1,
            50_000.0,
        );
        for i in 0..50 {
            let s = d.at(t0 + i as f64 * 0.1);
            assert_eq!(s.odometer_m, 50_000.0);
            assert_eq!(s.speed_mps, 0.0);
        }
    }

    #[test]
    fn demand_mapping_matches_app_direction() {
        use wheels_xcal::TestKind::*;
        assert_eq!(
            demand_for(AppAr),
            TrafficDemand::Backlog(Direction::Uplink)
        );
        assert_eq!(
            demand_for(AppVideo),
            TrafficDemand::Backlog(Direction::Downlink)
        );
        assert_eq!(demand_for(Rtt), TrafficDemand::Ping);
    }
}
