//! Inspect the simulated world: the LA → Boston route, the 8-day drive
//! plan, and each operator's cell deployment along it.
//!
//! ```text
//! cargo run --release --example cross_country
//! ```

use wheels::geo::cities::CityId;
use wheels::geo::region::RegionKind;
use wheels::geo::trip::DrivePlan;
use wheels::radio::band::Technology;
use wheels::ran::deployment::build_all;
use wheels::ran::Operator;

fn main() {
    println!("== the simulated cross-country world ==\n");
    let plan = DrivePlan::cross_country(7);
    let route = plan.route();

    println!(
        "Route: {:.0} km through {} waypoints (road factor {:.2})",
        route.total_m() / 1_000.0,
        route.cities().len(),
        route.road_factor()
    );
    let mix = route.region_mix(1_000.0);
    print!("Region mix by route-miles:");
    for (kind, frac) in mix {
        print!(" {}={:.0}%", kind.label(), frac * 100.0);
    }
    println!("\n");

    println!("Drive plan (8 days):");
    for d in plan.days() {
        let km = (d.end_odometer_m - d.start_odometer_m) / 1_000.0;
        let h = (d.end_time_s - d.start_time_s) as f64 / 3_600.0;
        println!(
            "  day {}: {:>5.0} km in {:>4.1} h -> overnight in {}",
            d.day + 1,
            km,
            h,
            d.overnight_city
        );
    }
    println!(
        "  total driving time: {:.1} h\n",
        plan.total_driving_s() as f64 / 3_600.0
    );

    println!("Cell deployments along the route:");
    let dbs = build_all(route, 7);
    for (i, op) in Operator::ALL.iter().enumerate() {
        print!("  {:<9}", op.label());
        for tech in Technology::ALL {
            print!(" {}={:<5}", tech.label(), dbs[i].layer_len(tech));
        }
        println!(" (total {})", dbs[i].len());
    }

    println!("\nWhat the drive looks like around each major city:");
    for (i, c) in route.cities().iter().enumerate() {
        if !c.major {
            continue;
        }
        let od = route.city_odometer_m(CityId(i));
        let t = plan.time_at_odometer(od);
        let regions: Vec<RegionKind> = [-20_000.0, 0.0, 20_000.0]
            .iter()
            .map(|d| route.region_at(od + d))
            .collect();
        println!(
            "  {:<15} odometer {:>6.0} km, reached at t={:>7.0}s, approach {:?}",
            c.name,
            od / 1_000.0,
            t.unwrap_or(0.0),
            regions
        );
    }
}
