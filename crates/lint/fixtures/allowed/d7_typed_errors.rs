//! The D7-clean counterpart: the same frame-decoding surface written
//! with typed error propagation. The one residual `expect` documents a
//! structurally infallible case and carries an allow with a reason.

use std::fmt;

#[derive(Debug)]
pub enum FrameError {
    Truncated { want: usize, have: usize },
    BadKind(u32),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { want, have } => {
                write!(f, "truncated frame: want {want} words, have {have}")
            }
            FrameError::BadKind(k) => write!(f, "unsupported frame kind {k}"),
        }
    }
}

pub struct Frame {
    words: Vec<u64>,
}

pub fn read_word(frame: &Frame, at: usize) -> Result<u64, FrameError> {
    frame.words.get(at).copied().ok_or(FrameError::Truncated {
        want: at + 1,
        have: frame.words.len(),
    })
}

pub fn first_word(frame: &Frame) -> Result<u64, FrameError> {
    read_word(frame, 0)
}

pub fn checked_kind(kind: u32) -> Result<u32, FrameError> {
    match kind {
        0..=3 => Ok(kind),
        k => Err(FrameError::BadKind(k)),
    }
}

pub fn header_word(frame: &Frame) -> u64 {
    // lint:allow(D7): constructor guarantees at least one word; checked on every path above
    frame.words.first().copied().expect("frame is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_frames_report_not_panic() {
        let f = Frame { words: vec![1, 2] };
        assert!(read_word(&f, 5).is_err());
        // Test code may unwrap freely.
        assert_eq!(read_word(&f, 1).unwrap(), 2);
    }
}
