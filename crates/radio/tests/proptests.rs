//! Property tests for the PHY primitives.

use proptest::prelude::*;

use wheels_radio::band::{Band, Technology};
use wheels_radio::bler::bler_from_sinr;
use wheels_radio::capacity::CapacityModel;
use wheels_radio::mcs::{mcs_from_sinr, spectral_efficiency, MAX_MCS};
use wheels_radio::pathloss::PathLossModel;
use wheels_radio::shadowing::ShadowingField;
use wheels_radio::{db_to_linear, linear_to_db};

proptest! {
    #[test]
    fn db_roundtrip(db in -60.0f64..60.0) {
        prop_assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
    }

    #[test]
    fn pathloss_monotone_in_distance(f in 600.0f64..40_000.0, clutter in 0.0f64..1.0,
                                     d1 in 1.0f64..50_000.0, d2 in 1.0f64..50_000.0) {
        let m = PathLossModel::new(Band::new(f), clutter);
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(m.loss_db(near) <= m.loss_db(far) + 1e-9);
    }

    #[test]
    fn pathloss_monotone_in_clutter(f in 600.0f64..40_000.0, d in 10.0f64..20_000.0,
                                    c1 in 0.0f64..1.0, c2 in 0.0f64..1.0) {
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let a = PathLossModel::new(Band::new(f), lo).loss_db(d);
        let b = PathLossModel::new(Band::new(f), hi).loss_db(d);
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn capacity_never_exceeds_shannon(bw in 5.0f64..800.0, layers in 1.0f64..4.0,
                                      overhead in 0.3f64..1.0, sinr in -10.0f64..40.0,
                                      bler in 0.0f64..0.5, share in 0.0f64..1.0) {
        let m = CapacityModel::new(bw, layers, overhead);
        let c = m.capacity(sinr, bler, share);
        prop_assert!(c.mbps <= m.shannon_mbps(sinr) + 1e-9);
        prop_assert!(c.mcs <= MAX_MCS);
    }

    #[test]
    fn capacity_monotone_in_share(bw in 5.0f64..800.0, sinr in -10.0f64..40.0,
                                  s1 in 0.0f64..1.0, s2 in 0.0f64..1.0) {
        let m = CapacityModel::new(bw, 2.0, 0.8);
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(m.capacity(sinr, 0.1, lo).mbps <= m.capacity(sinr, 0.1, hi).mbps + 1e-9);
    }

    #[test]
    fn mcs_and_efficiency_monotone(s1 in -30.0f64..50.0, s2 in -30.0f64..50.0) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let (m_lo, m_hi) = (mcs_from_sinr(lo), mcs_from_sinr(hi));
        prop_assert!(m_lo <= m_hi);
        prop_assert!(spectral_efficiency(m_lo) <= spectral_efficiency(m_hi));
    }

    #[test]
    fn bler_bounded_and_monotone(sinr in -20.0f64..40.0, speed in 0.0f64..50.0) {
        let b = bler_from_sinr(sinr, speed);
        prop_assert!((0.0..=0.9).contains(&b));
        // More speed can never reduce BLER.
        prop_assert!(bler_from_sinr(sinr, speed + 5.0) + 1e-12 >= b);
    }

    #[test]
    fn shadowing_deterministic_and_bounded(seed in 0u64..1_000, sigma in 0.5f64..10.0,
                                           steps in prop::collection::vec(0.1f64..500.0, 1..50)) {
        let mut f1 = ShadowingField::new(sigma, 80.0, seed);
        let mut f2 = ShadowingField::new(sigma, 80.0, seed);
        let mut d = 0.0;
        for step in steps {
            d += step;
            let a = f1.at(d);
            let b = f2.at(d);
            prop_assert_eq!(a, b);
            // Irwin-Hall(12) is bounded by ±6σ.
            prop_assert!(a.abs() <= 6.0 * sigma + 1e-9);
        }
    }

    #[test]
    fn capacity_monotone_in_sinr(bw in 5.0f64..800.0, layers in 1.0f64..4.0,
                                 overhead in 0.3f64..1.0, bler in 0.0f64..0.5,
                                 share in 0.05f64..1.0,
                                 s1 in -15.0f64..45.0, s2 in -15.0f64..45.0) {
        // Within one MCS table, more SINR can never yield less capacity:
        // the MCS index is a non-decreasing step function of SINR and each
        // step maps to a higher spectral efficiency.
        let m = CapacityModel::new(bw, layers, overhead);
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let (c_lo, c_hi) = (m.capacity(lo, bler, share), m.capacity(hi, bler, share));
        prop_assert!(c_lo.mcs <= c_hi.mcs);
        prop_assert!(c_lo.mbps <= c_hi.mbps + 1e-9);
    }

    #[test]
    fn shadowing_autocorrelation_bounded(seed in 0u64..1_000, sigma in 0.5f64..10.0,
                                         corr in 20.0f64..200.0,
                                         steps in prop::collection::vec(0.1f64..500.0, 2..50)) {
        // AR(1): S(d+Δ) = ρ·S(d) + sqrt(1−ρ²)·σ·Z with ρ = exp(−Δ/D_corr)
        // and Z Irwin–Hall(12)-bounded by ±6. The innovation — how far the
        // new value strays from the decayed old one — is therefore bounded
        // by 6·sqrt(1−ρ²)·σ at every step, which is the testable face of
        // "autocorrelation ρ per Δ".
        let mut f = ShadowingField::new(sigma, corr, seed);
        let mut d = 0.0;
        let mut prev = f.at(d);
        for step in steps {
            d += step;
            let cur = f.at(d);
            let rho = (-step / corr).exp();
            let bound = 6.0 * (1.0 - rho * rho).sqrt() * sigma;
            prop_assert!((cur - rho * prev).abs() <= bound + 1e-9,
                         "innovation {} exceeds bound {}", (cur - rho * prev).abs(), bound);
            prev = cur;
        }
    }

    #[test]
    fn shadowing_span_resume_stable(seed in 0u64..1_000, sigma in 0.5f64..10.0,
                                    step in 0.5f64..50.0,
                                    split in 1usize..63, total in 64usize..65) {
        // Filling one long span must be bit-identical to filling it in two
        // chunks that meet at an arbitrary boundary: the field's resume
        // state (last distance + last value) fully determines the process.
        let total = total.max(split + 1);
        let mut whole = ShadowingField::new(sigma, 120.0, seed);
        let mut parts = ShadowingField::new(sigma, 120.0, seed);
        let mut buf_w = vec![0.0f64; total];
        whole.fill_span(10.0, step, &mut buf_w);
        let mut buf_a = vec![0.0f64; split];
        let mut buf_b = vec![0.0f64; total - split];
        parts.fill_span(10.0, step, &mut buf_a);
        // Resume one step past the first chunk's last distance, produced by
        // the same repeated accumulation fill_span uses internally — a
        // `split·step` multiplication could differ in the last bit.
        let mut resume_d = 10.0;
        for _ in 0..split {
            resume_d += step;
        }
        parts.fill_span(resume_d, step, &mut buf_b);
        for (i, (&w, &p)) in buf_w.iter().zip(buf_a.iter().chain(buf_b.iter())).enumerate() {
            prop_assert_eq!(w.to_bits(), p.to_bits(), "diverged at sample {}", i);
        }
    }

    #[test]
    fn shadowing_span_matches_per_tick(seed in 0u64..1_000, sigma in 0.5f64..10.0,
                                       start in 0.0f64..10_000.0, step in 0.01f64..100.0,
                                       n in 1usize..128) {
        // Batched generation must be byte-identical to the per-tick loop it
        // replaced: same distances, same RNG draws, same rounding.
        let mut batched = ShadowingField::new(sigma, 80.0, seed);
        let mut ticked = ShadowingField::new(sigma, 80.0, seed);
        let mut buf = vec![0.0f64; n];
        batched.fill_span(start, step, &mut buf);
        let mut d = start;
        for (i, &b) in buf.iter().enumerate() {
            if i > 0 {
                d += step;
            }
            prop_assert_eq!(b.to_bits(), ticked.at(d).to_bits(), "diverged at sample {}", i);
        }
    }

    #[test]
    fn every_technology_has_consistent_metadata(idx in 0usize..5) {
        let t = Technology::ALL[idx];
        prop_assert!(t.nominal_range_m() > 0.0);
        prop_assert!(t.band().fspl_1m_db() > 20.0);
        if t.is_high_speed() {
            prop_assert!(t.is_5g());
        }
    }
}
