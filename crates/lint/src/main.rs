//! `wheels-lint` CLI.
//!
//! ```text
//! wheels-lint [--fixtures]
//!             [--json] [--json-out FILE]
//!             [--baseline FILE] [--write-baseline FILE]
//!             [PATH ...]
//! ```
//!
//! Default paths: `crates/ src/ examples/ tests/` (those that exist).
//! Configuration (`lint-hotpaths.toml`, `lint-rng-domains.toml`) is read
//! from the current directory — run from the workspace root, as `ci.sh`
//! does.
//!
//! Exit codes: `0` clean, `1` findings (or fixture self-check failure,
//! or a stale baseline entry), `2` usage/config/IO error.

use std::path::PathBuf;
use std::process::ExitCode;
// lint:allow(D3): the lint wall-time report measures the linter itself, never simulation state
use std::time::Instant;

use wheels_lint::{
    apply_baseline, baseline, check_fixtures, lint_paths, render_report, to_baseline_entries,
    BaselineOutcome, Finding, LintConfig,
};

const USAGE: &str = "usage: wheels-lint [--fixtures] [--json] [--json-out FILE] \
[--baseline FILE] [--write-baseline FILE] [PATH ...]\n\
  PATH              files or directories to lint (default: crates/ src/ examples/ tests/)\n\
  --json            print the full run report (all findings + statuses) as JSON\n\
  --json-out FILE   additionally write the run report to FILE (e.g. LINT_report.json)\n\
  --baseline FILE   ratchet mode: only non-baselined findings fail, and any\n\
                    baseline entry that no longer fires fails too\n\
  --write-baseline FILE  record current unsuppressed findings as the new baseline\n\
  --fixtures        self-check: every fixtures/bad file must fire its rule,\n\
                    every fixtures/allowed file must be clean";

struct Args {
    fixtures: bool,
    json: bool,
    json_out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        fixtures: false,
        json: false,
        json_out: None,
        baseline: None,
        write_baseline: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fixtures" => args.fixtures = true,
            "--json" => args.json = true,
            "--json-out" => args.json_out = Some(next_path(&mut it)?),
            "--baseline" => args.baseline = Some(next_path(&mut it)?),
            "--write-baseline" => args.write_baseline = Some(next_path(&mut it)?),
            "--help" | "-h" => return Err(usage()),
            p if p.starts_with('-') => {
                eprintln!("unknown flag: {p}");
                return Err(usage());
            }
            p => args.paths.push(PathBuf::from(p)),
        }
    }
    Ok(args)
}

fn next_path(it: &mut impl Iterator<Item = String>) -> Result<PathBuf, ExitCode> {
    it.next().map(PathBuf::from).ok_or_else(usage)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };

    if args.fixtures {
        return run_fixtures();
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let cfg = match LintConfig::load(&cwd) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lint: config error: {e}");
            return ExitCode::from(2);
        }
    };

    let mut paths = args.paths.clone();
    if paths.is_empty() {
        for p in ["crates", "src", "examples", "tests"] {
            let pb = PathBuf::from(p);
            if pb.exists() {
                paths.push(pb);
            }
        }
    }

    // lint:allow(D3): wall time is printed for the CI log, never fed into analysis
    let t0 = Instant::now();
    let (findings, files) = match lint_paths(&paths, Some(&cwd), &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };
    let wall_ms = t0.elapsed().as_millis();

    if let Some(out) = &args.write_baseline {
        let entries = to_baseline_entries(&findings);
        let text = baseline::render_baseline(&entries);
        // lint:allow(D6): the baseline is a dev artifact regenerated on demand, not campaign output
        if let Err(e) = std::fs::write(out, text) {
            eprintln!("lint: writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "lint: wrote {} baseline entries to {}",
            entries.len(),
            out.display()
        );
        return ExitCode::SUCCESS;
    }

    let outcome: Option<BaselineOutcome> = match &args.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("lint: reading {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match baseline::parse_baseline(&text) {
                Ok(entries) => Some(apply_baseline(&findings, &entries)),
                Err(e) => {
                    eprintln!("lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };

    let report = render_report(&findings, files, wall_ms, outcome.as_ref());
    if args.json {
        println!("{report}");
    }
    if let Some(out) = &args.json_out {
        // lint:allow(D6): the lint report is a CI artifact, not campaign output the byte gates compare
        if let Err(e) = std::fs::write(out, &report) {
            eprintln!("lint: writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }

    let failing: Vec<&Finding> = match &outcome {
        Some(o) => o.fresh.iter().collect(),
        None => findings.iter().filter(|f| f.is_unsuppressed()).collect(),
    };
    if !args.json {
        for f in &failing {
            println!("{f}");
        }
    }
    let mut failed = !failing.is_empty();
    if let Some(o) = &outcome {
        for e in &o.stale {
            eprintln!(
                "lint: stale baseline entry {} ({} in {}): the finding no longer \
                 fires — remove the entry (ratchet down)",
                e.fingerprint, e.rule, e.file
            );
        }
        failed = failed || !o.stale.is_empty();
        eprintln!(
            "lint: {files} files, {} findings ({} baselined, {} suppressed, {} new, {} stale) in {wall_ms} ms",
            findings.len(),
            o.baselined.len(),
            findings.iter().filter(|f| f.suppressed.is_some()).count(),
            o.fresh.len(),
            o.stale.len(),
        );
    } else {
        eprintln!(
            "lint: {files} files, {} findings ({} suppressed, {} failing) in {wall_ms} ms",
            findings.len(),
            findings.iter().filter(|f| f.suppressed.is_some()).count(),
            failing.len(),
        );
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn run_fixtures() -> ExitCode {
    let dir = PathBuf::from("crates/lint/fixtures");
    match check_fixtures(&dir) {
        Ok(results) => {
            let mut bad = 0;
            for r in &results {
                if let Some(err) = &r.error {
                    eprintln!("fixture {}: {err}", r.file.display());
                    bad += 1;
                }
            }
            eprintln!("lint fixtures: {} checked, {} failed", results.len(), bad);
            if bad == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("lint: fixtures: {e}");
            ExitCode::from(2)
        }
    }
}
