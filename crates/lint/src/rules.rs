//! The rule set, D1–D9.
//!
//! Rules are token matchers over the lexed stream (see [`crate::lexer`])
//! with the structural model from [`crate::parser`]: no type inference,
//! no name resolution beyond the per-function call-site lists. The
//! matchers are deliberately *stricter* than the semantic property they
//! guard — e.g. D2 flags any `std::collections::HashMap` import, not
//! just iterated maps — because the escape hatch is cheap (an adjacent
//! `// lint:allow(Dn): <reason>` forces the author to write down *why*
//! the use is safe) while a missed re-entry of hash-order or NaN
//! nondeterminism costs a probabilistic CI failure months later.
//!
//! D1–D7 are per-file ([`run`]); D8 (hot-path allocation, one-level
//! transitive) and D9 (RNG-domain provenance) need the whole analyzed
//! set and run in [`finalize`].

use crate::config::LintConfig;
use crate::lexer::{self, Line, Token, TokenKind};
use crate::parser::{self, is_keyword, FileModel};
use crate::Rule;

/// A rule match before suppression is applied.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the anchoring token.
    pub col: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

/// One fully lexed and parsed file, ready for the matchers.
#[derive(Debug, Clone)]
pub struct AnalyzedFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Per-line code/comment split.
    pub lines: Vec<Line>,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Functions, scopes, test regions, call sites.
    pub model: FileModel,
}

/// Lex and parse one file. `whole_file_test` marks files under test-only
/// directories (`tests/`, `benches/`, `proptests/`).
pub fn analyze(rel: &str, src: &str, whole_file_test: bool) -> AnalyzedFile {
    let lex = lexer::tokenize(src);
    let model = parser::parse(&lex.tokens, lex.lines.len(), whole_file_test);
    AnalyzedFile {
        rel: rel.to_string(),
        lines: lex.lines,
        tokens: lex.tokens,
        model,
    }
}

/// Comparator-taking methods whose key function must be total (D1).
const ORDER_SINKS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "binary_search_by",
    "max_by",
    "min_by",
    "select_nth_unstable_by",
];

/// Macros whose invocation aborts the unit (D7).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Does the token at `i` match `text`? (Punct tokens hold their single
/// char as text, so one comparison covers both kinds.)
fn tok_is(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens.get(i).map(|t| t.text == text).unwrap_or(false)
}

/// Does the token sequence `pat` start at `i`?
fn seq_at(tokens: &[Token], i: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(k, p)| tok_is(tokens, i + k, p))
}

/// Index of the matching `)` for the `(` at `open`, if balanced.
fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    if !tok_is(tokens, open, "(") {
        return None;
    }
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Run the per-file rules (D1–D7) over one analyzed file.
pub fn run(file: &AnalyzedFile, cfg: &LintConfig) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    let tokens = &file.tokens;
    let model = &file.model;

    // --- D1 / D5: partial_cmp hazards (apply everywhere, tests too: a
    // NaN panic in a test is a probabilistic CI failure). The sink stack
    // records the paren depth of every ordering sink whose argument list
    // is still open, so a `partial_cmp` anywhere inside a comparator
    // closure is caught without any distance window. ------------------
    let mut depth = 0i32;
    let mut sinks: Vec<i32> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct('(') {
            depth += 1;
            if i > 0 {
                let prev = &tokens[i - 1];
                let is_def = i >= 2 && tokens[i - 2].is_ident("fn");
                if prev.kind == TokenKind::Ident
                    && ORDER_SINKS.contains(&prev.text.as_str())
                    && !is_def
                {
                    sinks.push(depth);
                }
            }
        } else if t.is_punct(')') {
            if sinks.last() == Some(&depth) {
                sinks.pop();
            }
            depth -= 1;
        } else if t.is_ident("partial_cmp") {
            // Skip trait definitions/impl headers: `fn partial_cmp(..)`.
            if i > 0 && tokens[i - 1].is_ident("fn") {
                continue;
            }
            if !sinks.is_empty() {
                findings.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::D1,
                    message: "comparator built on `partial_cmp` — NaN makes the order \
                              non-total; key floats with `f64::total_cmp` instead"
                        .into(),
                });
                continue; // D1 subsumes D5 on the same expression.
            }
            // D5: `partial_cmp(...).unwrap()` / `.expect(...)` chains.
            if let Some(close) = matching_paren(tokens, i + 1) {
                if tok_is(tokens, close + 1, ".")
                    && (tok_is(tokens, close + 2, "unwrap") || tok_is(tokens, close + 2, "expect"))
                    && tok_is(tokens, close + 3, "(")
                {
                    findings.push(RawFinding {
                        line: t.line,
                        col: t.col,
                        rule: Rule::D5,
                        message: "`partial_cmp(..).unwrap()/.expect(..)` panics on NaN; \
                                  use `f64::total_cmp` or handle the `None`"
                            .into(),
                    });
                }
            }
        }
    }

    // --- Line-scoped rules D2/D3/D4/D6 (non-test code only). ----------
    // Group tokens by line once; every matcher below is a sequence scan
    // over one line's tokens.
    let by_line = tokens_by_line(tokens, file.lines.len());
    for (idx, range) in by_line.iter().enumerate() {
        let line = idx + 1;
        if model.is_test_line(line) {
            continue;
        }
        let lt = &tokens[range.clone()];
        let col_of = |name: &str| -> usize {
            lt.iter().find(|t| t.text == name).map(|t| t.col).unwrap_or(1)
        };

        // D2: std HashMap/HashSet anywhere in non-test code. The import
        // (or a fully-qualified path) is the single anchor per line; an
        // allow there covers the file's uses of that import.
        if find_seq(lt, &["std", ":", ":", "collections"]).is_some() {
            for name in ["HashMap", "HashSet", "hash_map", "hash_set"] {
                if lt.iter().any(|t| t.is_ident(name)) {
                    findings.push(RawFinding {
                        line,
                        col: col_of(name),
                        rule: Rule::D2,
                        message: format!(
                            "`{name}` has nondeterministic iteration order; use \
                             `BTreeMap`/`BTreeSet` (or sort before iterating and \
                             justify with an allow)"
                        ),
                    });
                    break; // one D2 anchor per line
                }
            }
        }

        // D3: ambient nondeterminism — wall clocks, entropy, env vars.
        let d3: Option<(&str, usize)> = if let Some(p) = find_seq(lt, &["Instant", ":", ":", "now"])
        {
            Some(("`Instant::now` reads the wall clock", lt[p].col))
        } else if let Some(t) = lt.iter().find(|t| t.is_ident("SystemTime")) {
            Some(("`SystemTime` reads the wall clock", t.col))
        } else if let Some(t) = lt.iter().find(|t| t.is_ident("UNIX_EPOCH")) {
            Some(("`UNIX_EPOCH` arithmetic reads the wall clock", t.col))
        } else if let Some(t) = lt.iter().find(|t| t.is_ident("thread_rng")) {
            Some(("`thread_rng` draws OS entropy", t.col))
        } else if let Some(t) = lt.iter().find(|t| t.is_ident("from_entropy")) {
            Some(("`from_entropy` draws OS entropy", t.col))
        } else if let Some(p) = find_seq(lt, &["env", ":", ":", "var"]) {
            Some(("environment reads vary between hosts/invocations", lt[p].col))
        } else if find_seq(lt, &["use", "std", ":", ":", "time"]).is_some()
            && lt.iter().any(|t| t.is_ident("Instant"))
        {
            Some((
                "importing `std::time::Instant` invites wall-clock reads",
                col_of("Instant"),
            ))
        } else {
            None
        };
        if let Some((why, col)) = d3 {
            findings.push(RawFinding {
                line,
                col,
                rule: Rule::D3,
                message: format!(
                    "{why}; simulation state must be a pure function of \
                     (seed, scenario, scale)"
                ),
            });
        }

        // D4: bare RNG construction outside the derivation layer.
        for tok in ["seed_from_u64", "from_seed", "splitmix64"] {
            if lt.iter().any(|t| t.is_ident(tok)) {
                findings.push(RawFinding {
                    line,
                    col: col_of(tok),
                    rule: Rule::D4,
                    message: format!(
                        "bare `{tok}` RNG construction; derive streams through \
                         `netsim::rng::{{derive_seed, stream}}` so every unit's \
                         randomness is keyed on (seed, domain, unit)"
                    ),
                });
                break;
            }
        }

        // D6: bare output writes. A process death between `create` and
        // the final flush leaves a torn file under its *final* name —
        // exactly what downstream `cmp` gates and resumed runs must
        // never observe.
        for (head, tail, pat) in [("fs", "write", "fs::write"), ("File", "create", "File::create")]
        {
            if let Some(p) = find_seq(lt, &[head, ":", ":", tail]) {
                findings.push(RawFinding {
                    line,
                    col: lt[p].col,
                    rule: Rule::D6,
                    message: format!(
                        "bare `{pat}` can leave a torn output if the process \
                         dies mid-write; route it through \
                         `wheels_campaign::checkpoint::atomic_write` \
                         (temp file + fsync + rename)"
                    ),
                });
                break;
            }
        }
    }

    // --- D7: panic surface in the fault-tolerant trees. ---------------
    if cfg.d7_applies(&file.rel) {
        run_d7(file, &mut findings);
    }

    findings.sort_by_key(|f| (f.line, f.rule as u8, f.col));
    findings
}

/// D7 panic-surface matchers: `.unwrap(` / `.expect(`, panic-family
/// macros, and panicking slice indexes — in non-test code only. The
/// graceful-degradation invariant (PRs 2/7) says an injected fault must
/// surface as a typed `UnitError` and a degraded unit in the integrity
/// report, never as an abort; any of these sites can turn a contained
/// fault into a process death.
fn run_d7(file: &AnalyzedFile, findings: &mut Vec<RawFinding>) {
    let tokens = &file.tokens;
    let model = &file.model;
    for (i, t) in tokens.iter().enumerate() {
        if model.is_test_line(t.line) {
            continue;
        }
        match t.kind {
            TokenKind::Ident if (t.text == "unwrap" || t.text == "expect") => {
                // Method position only: `.unwrap(` — a local named
                // `expect` or `Option::unwrap` passed as a fn pointer
                // has a different shape.
                if i > 0 && tokens[i - 1].is_punct('.') && tok_is(tokens, i + 1, "(") {
                    findings.push(RawFinding {
                        line: t.line,
                        col: t.col,
                        rule: Rule::D7,
                        message: format!(
                            "`.{}(..)` in the fault-tolerant tree aborts the unit on \
                             failure; propagate a typed error \
                             (`CampaignError`/`UnitError`) or justify with an allow",
                            t.text
                        ),
                    });
                }
            }
            TokenKind::Ident if PANIC_MACROS.contains(&t.text.as_str()) => {
                if tok_is(tokens, i + 1, "!") {
                    findings.push(RawFinding {
                        line: t.line,
                        col: t.col,
                        rule: Rule::D7,
                        message: format!(
                            "`{}!` aborts the unit instead of degrading; return a \
                             typed error so the fault surfaces in the integrity \
                             report, or justify with an allow",
                            t.text
                        ),
                    });
                }
            }
            TokenKind::Punct if t.is_punct('[') => {
                // A panicking index is `expr[..]` where expr ends in an
                // identifier, `)`, or `]`. Everything else — `#[attr]`,
                // `vec![..]`, `[u8; 4]` types, slice patterns — has a
                // different preceding token.
                let indexes_expr = i > 0
                    && match &tokens[i - 1] {
                        p if p.is_punct(')') || p.is_punct(']') => true,
                        p if p.kind == TokenKind::Ident => !is_keyword(&p.text),
                        _ => false,
                    };
                if !indexes_expr {
                    continue;
                }
                // `x[..]` (full range) reslices and cannot panic.
                if seq_at(tokens, i + 1, &[".", ".", "]"]) {
                    continue;
                }
                findings.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::D7,
                    message: "slice/array index panics when out of bounds; use \
                              `.get(..)` and propagate, or justify the invariant \
                              with an allow"
                        .into(),
                });
            }
            _ => {}
        }
    }
}

/// Map each 1-based line to its token index range.
fn tokens_by_line(tokens: &[Token], n_lines: usize) -> Vec<std::ops::Range<usize>> {
    let mut out = vec![0..0; n_lines.max(1)];
    let mut i = 0usize;
    while i < tokens.len() {
        let line = tokens[i].line;
        let start = i;
        while i < tokens.len() && tokens[i].line == line {
            i += 1;
        }
        if line >= 1 && line <= out.len() {
            out[line - 1] = start..i;
        }
    }
    out
}

/// First index in `lt` where the text sequence `pat` starts.
fn find_seq(lt: &[Token], pat: &[&str]) -> Option<usize> {
    if pat.is_empty() || lt.len() < pat.len() {
        return None;
    }
    (0..=lt.len() - pat.len()).find(|&i| pat.iter().enumerate().all(|(k, p)| lt[i + k].text == *p))
}

// ---------------------------------------------------------------------
// Cross-file rules: D8 hot-path allocation, D9 RNG-domain provenance.
// ---------------------------------------------------------------------

/// An RNG domain constant declaration site.
#[derive(Debug, Clone)]
struct RngDecl {
    file: usize,
    name: String,
    line: usize,
    col: usize,
}

/// A `derive_seed`/`stream` call that names a domain constant.
#[derive(Debug, Clone)]
struct RngUse {
    file: usize,
    name: String,
    line: usize,
    col: usize,
    /// Literal `&[..]` key-word count, when statically visible.
    arity: Option<usize>,
}

/// Run the cross-file rules over the whole analyzed set. Returns
/// `(file_index, finding)` pairs so the caller can apply that file's
/// suppressions.
pub fn finalize(files: &[AnalyzedFile], cfg: &LintConfig) -> Vec<(usize, RawFinding)> {
    let mut out = Vec::new();
    run_d8(files, cfg, &mut out);
    run_d9(files, cfg, &mut out);
    out
}

/// D8: functions registered in `lint-hotpaths.toml` may not allocate —
/// directly or through one level of calls. PR 6's span-batched hot loops
/// (`ShadowBank::advance_span`, `UeRadio::step`, `evaluate_layer_span`,
/// the CUBIC/BBR ack path, `FleetLoad::fold_span`, the export emitters)
/// earn their speedups by reusing scratch buffers; one stray `format!`
/// erases that silently. The transitive hop resolves callees by name:
/// same file first, then a unique match anywhere in the workspace;
/// ambiguous names are skipped (a lint must not guess).
fn run_d8(files: &[AnalyzedFile], cfg: &LintConfig, out: &mut Vec<(usize, RawFinding)>) {
    if cfg.hotpaths.is_empty() {
        return;
    }
    // Forbidden macro names (`vec!`) vs call paths (`Vec::new`).
    let forbid_macros: Vec<&str> = cfg
        .hotpath_forbid
        .iter()
        .filter_map(|f| f.strip_suffix('!'))
        .collect();
    let forbid_call = |name: &str, qual: &str| -> Option<String> {
        let qualified = if qual.is_empty() {
            None
        } else {
            Some(format!("{qual}::{name}"))
        };
        cfg.hotpath_forbid
            .iter()
            .find(|f| f.as_str() == name || Some(f.as_str()) == qualified.as_deref())
            .map(|f| f.clone())
    };

    // Global callee index: bare name -> (file, fn) for unambiguous
    // cross-file resolution.
    let mut by_name: Vec<(&str, usize, usize)> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.model.functions.iter().enumerate() {
            by_name.push((g.name.as_str(), fi, gi));
        }
    }
    let resolve = |home: usize, name: &str, method: bool| -> Option<(usize, usize)> {
        let mut same_file = by_name.iter().filter(|(n, fi, _)| *fi == home && *n == name);
        if let Some(&(_, fi, gi)) = same_file.next() {
            return Some((fi, gi));
        }
        if method {
            // `receiver.name(..)`: the receiver's type is unknown, so a
            // same-name fn in another file is likely a different type's
            // method — never bind method calls across files.
            return None;
        }
        let mut global = by_name.iter().filter(|(n, _, _)| *n == name);
        match (global.next(), global.next()) {
            (Some(&(_, fi, gi)), None) => Some((fi, gi)),
            _ => None, // zero or ambiguous: skip, never guess
        }
    };

    for (fi, f) in files.iter().enumerate() {
        for hot in f.model.functions.iter() {
            if hot.is_test || !cfg.is_hotpath(&hot.qual, &hot.name) {
                continue;
            }
            // Direct: forbidden calls in the hot body.
            for call in &hot.calls {
                if let Some(what) = forbid_call(&call.name, &call.qual) {
                    out.push((
                        fi,
                        RawFinding {
                            line: call.line,
                            col: 1,
                            rule: Rule::D8,
                            message: format!(
                                "hot path `{}` calls `{what}` — allocation in the \
                                 per-span loop; hoist it into a reused scratch \
                                 buffer or justify with an allow",
                                hot.qual
                            ),
                        },
                    ));
                }
            }
            // Direct: forbidden macros in the hot body.
            let toks = &f.tokens;
            let lo = hot.body.start.min(toks.len());
            let hi = hot.body.end.min(toks.len());
            for i in lo..hi {
                let t = &toks[i];
                if t.kind == TokenKind::Ident
                    && forbid_macros.contains(&t.text.as_str())
                    && tok_is(toks, i + 1, "!")
                {
                    out.push((
                        fi,
                        RawFinding {
                            line: t.line,
                            col: t.col,
                            rule: Rule::D8,
                            message: format!(
                                "hot path `{}` invokes `{}!` — allocation in the \
                                 per-span loop; hoist it into a reused scratch \
                                 buffer or justify with an allow",
                                hot.qual, t.text
                            ),
                        },
                    ));
                }
            }
            // One transitive level: callees that allocate.
            for call in &hot.calls {
                let Some((cfi, cgi)) = resolve(fi, &call.name, call.method) else {
                    continue;
                };
                let callee = &files[cfi].model.functions[cgi];
                if callee.is_test {
                    continue;
                }
                let mut bad: Option<String> = None;
                for inner in &callee.calls {
                    if let Some(what) = forbid_call(&inner.name, &inner.qual) {
                        bad = Some(what);
                        break;
                    }
                }
                if bad.is_none() {
                    let ctoks = &files[cfi].tokens;
                    let clo = callee.body.start.min(ctoks.len());
                    let chi = callee.body.end.min(ctoks.len());
                    for i in clo..chi {
                        let t = &ctoks[i];
                        if t.kind == TokenKind::Ident
                            && forbid_macros.contains(&t.text.as_str())
                            && tok_is(ctoks, i + 1, "!")
                        {
                            bad = Some(format!("{}!", t.text));
                            break;
                        }
                    }
                }
                if let Some(what) = bad {
                    out.push((
                        fi,
                        RawFinding {
                            line: call.line,
                            col: 1,
                            rule: Rule::D8,
                            message: format!(
                                "hot path `{}` calls `{}`, which calls `{what}` \
                                 (one level deep) — allocation on the hot path; \
                                 restructure the callee or justify with an allow",
                                hot.qual, call.name
                            ),
                        },
                    ));
                }
            }
        }
    }
}

/// D9: RNG-domain provenance. Every `derive_seed(seed, DOMAIN_*, ..)` or
/// `stream(seed, DOMAIN_*, ..)` site must name a domain constant that is
/// declared exactly once, in `netsim::rng` — and when the registry pins
/// a key arity for the domain, every literal `&[..]` key slice must have
/// exactly that many words. Two sites absorbing different word counts
/// under one domain is how stream collisions (and silently correlated
/// units) happen; that is a statistics bug the paper's tables would
/// inherit invisibly.
fn run_d9(files: &[AnalyzedFile], cfg: &LintConfig, out: &mut Vec<(usize, RawFinding)>) {
    let prefix = cfg.rng_domain_prefix.as_str();
    if prefix.is_empty() {
        return;
    }
    let mut decls: Vec<RngDecl> = Vec::new();
    let mut uses: Vec<RngUse> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let toks = &f.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || f.model.is_test_line(t.line) {
                continue;
            }
            // Declaration: `const DOMAIN_X: ...`.
            if t.text == "const" {
                if let Some(n) = toks.get(i + 1) {
                    if n.kind == TokenKind::Ident && n.text.starts_with(prefix) {
                        decls.push(RngDecl {
                            file: fi,
                            name: n.text.clone(),
                            line: n.line,
                            col: n.col,
                        });
                    }
                }
                continue;
            }
            // Use: `derive_seed(..., DOMAIN_X, ...)` / `stream(...)`.
            if (t.text == "derive_seed" || t.text == "stream")
                && tok_is(toks, i + 1, "(")
                && !(i > 0 && toks[i - 1].is_ident("fn"))
            {
                if let Some(close) = matching_paren(toks, i + 1) {
                    if let Some(u) = domain_use(toks, i + 1, close, prefix, fi) {
                        uses.push(u);
                    }
                }
            }
        }
    }

    let module = cfg.rng_module.as_str();
    let in_module = |fi: usize| files[fi].rel.ends_with(module);
    let have_module = files.iter().any(|f| f.rel.ends_with(module));

    // Declared exactly once, in the declaring module.
    let mut seen: Vec<&RngDecl> = Vec::new();
    for d in &decls {
        if !in_module(d.file) {
            out.push((
                d.file,
                RawFinding {
                    line: d.line,
                    col: d.col,
                    rule: Rule::D9,
                    message: format!(
                        "RNG domain `{}` declared outside `{module}`; all domain \
                         constants live in one module so stream keys cannot collide",
                        d.name
                    ),
                },
            ));
        }
        if let Some(first) = seen.iter().find(|p| p.name == d.name) {
            out.push((
                d.file,
                RawFinding {
                    line: d.line,
                    col: d.col,
                    rule: Rule::D9,
                    message: format!(
                        "RNG domain `{}` redeclared (first declared at {}:{})",
                        d.name, files[first.file].rel, first.line
                    ),
                },
            ));
        } else {
            seen.push(d);
        }
    }

    // Every use names a declared domain (only checkable when the
    // declaring module is part of the analyzed set).
    if have_module {
        for u in &uses {
            if !decls.iter().any(|d| d.name == u.name) {
                out.push((
                    u.file,
                    RawFinding {
                        line: u.line,
                        col: u.col,
                        rule: Rule::D9,
                        message: format!(
                            "RNG domain `{}` is not declared in `{module}`; \
                             derive streams only from registered domains",
                            u.name
                        ),
                    },
                ));
            }
        }
    }

    // Key-arity consistency: the pinned registry arity wins; without a
    // pin, the first literal site anchors and later sites must agree.
    let mut domains: Vec<&str> = uses.iter().map(|u| u.name.as_str()).collect();
    domains.sort_unstable();
    domains.dedup();
    for name in domains {
        let sites: Vec<&RngUse> = uses.iter().filter(|u| u.name == name).collect();
        let expected = cfg
            .pinned_arity(name)
            .or_else(|| sites.iter().find_map(|s| s.arity));
        let Some(expected) = expected else { continue };
        for s in &sites {
            if let Some(n) = s.arity {
                if n != expected {
                    out.push((
                        s.file,
                        RawFinding {
                            line: s.line,
                            col: s.col,
                            rule: Rule::D9,
                            message: format!(
                                "`{name}` derived with {n} key word(s) here but its \
                                 registered arity is {expected}; mismatched key \
                                 shapes collide derived streams"
                            ),
                        },
                    ));
                }
            }
        }
    }
}

/// Extract the domain-constant use from a `derive_seed`/`stream` call
/// spanning tokens `(open..=close)`: the first `prefix`-named ident at
/// argument depth, plus the literal `&[..]` key-word count that follows
/// it (None when the slice is not a literal — `&words` passes through).
fn domain_use(
    tokens: &[Token],
    open: usize,
    close: usize,
    prefix: &str,
    file: usize,
) -> Option<RngUse> {
    let mut domain: Option<usize> = None;
    for j in open + 1..close {
        let t = &tokens[j];
        if t.kind == TokenKind::Ident && t.text.starts_with(prefix) {
            domain = Some(j);
            break;
        }
    }
    let d = domain?;
    let t = &tokens[d];
    // Literal key slice: `, &[ a, b, ... ]` (possibly `[..]` empty).
    let mut arity = None;
    let mut j = d + 1;
    if tok_is(tokens, j, ",") {
        j += 1;
        if tok_is(tokens, j, "&") {
            j += 1;
        }
        if tok_is(tokens, j, "[") {
            let mut depth = 0i32;
            let mut elems = 0usize;
            let mut any = false;
            for t2 in &tokens[j..=close.min(tokens.len() - 1)] {
                if t2.is_punct('[') || t2.is_punct('(') {
                    depth += 1;
                } else if t2.is_punct(']') || t2.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if depth == 1 {
                        any = true;
                        if t2.is_punct(',') {
                            elems += 1;
                        }
                    }
                }
            }
            arity = Some(if any { elems + 1 } else { 0 });
        }
    }
    Some(RngUse {
        file,
        name: t.text.clone(),
        line: t.line,
        col: t.col,
        arity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_at(rel: &str, src: &str) -> Vec<RawFinding> {
        let cfg = LintConfig::builtin();
        let file = analyze(rel, src, false);
        run(&file, &cfg)
    }

    fn lint(src: &str) -> Vec<RawFinding> {
        lint_at("x.rs", src)
    }

    #[test]
    fn d1_fires_inside_sort_comparator() {
        let f = lint("v.sort_by(|a, b| a.partial_cmp(b).unwrap());");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::D1);
    }

    #[test]
    fn d1_fires_across_lines() {
        let f = lint("sites.sort_by(|a, b| {\n    a.od\n        .partial_cmp(&b.od)\n        .expect(\"finite\")\n});");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::D1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn d1_not_fooled_by_closed_earlier_sort() {
        // The sort call is already closed; this partial_cmp is a plain
        // D5 chain, not a comparator.
        let f = lint("v.sort_by_key(|x| x.0);\nlet c = a.partial_cmp(&b).unwrap();");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::D5);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn d1_has_no_distance_limit() {
        // The old line-lexer used a 240-char window; the token engine
        // tracks the open sink call directly, at any distance.
        let filler = "    let _pad = x + 1;\n".repeat(30);
        let src = format!("v.sort_by(|a, b| {{\n{filler}    a.partial_cmp(b).unwrap()\n}});");
        let f = lint(&src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::D1);
    }

    #[test]
    fn d5_fires_on_bare_unwrap_chain() {
        let f = lint("if a.partial_cmp(&b).unwrap() == Ordering::Less {}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::D5);
    }

    #[test]
    fn trait_impl_definition_is_exempt() {
        let f = lint("fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n    Some(self.cmp(other))\n}");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_or_is_nan_safe() {
        let f = lint("let o = a.partial_cmp(&b).unwrap_or(Ordering::Equal);");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn safe_partial_cmp_handling_is_clean() {
        let f = lint("match a.partial_cmp(&b) { Some(o) => o, None => Ordering::Equal }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d2_fires_on_import_and_qualified_path() {
        let f = lint("use std::collections::HashMap;\nlet s = std::collections::HashSet::new();");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::D2));
    }

    #[test]
    fn d2_ignores_btree_imports() {
        let f = lint("use std::collections::{BTreeMap, BTreeSet, VecDeque};");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d3_fires_on_clock_entropy_env() {
        let f = lint("let t = Instant::now();\nlet s = SystemTime::now();\nlet r = thread_rng();\nlet v = std::env::var(\"X\");");
        assert_eq!(f.len(), 4, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::D3));
    }

    #[test]
    fn d3_ignores_env_args_and_duration() {
        let f = lint("let a: Vec<String> = std::env::args().collect();\nuse std::time::Duration;");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d4_fires_on_bare_seeding() {
        let f = lint("let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::D4);
    }

    #[test]
    fn d4_token_is_word_bounded() {
        let f = lint("let x = my_seed_from_u64_table[0];");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d6_fires_on_bare_write_and_create() {
        let f = lint("std::fs::write(&path, json).expect(\"write\");\nlet f = File::create(&tmp)?;");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::D6));
    }

    #[test]
    fn d6_token_boundaries_hold() {
        // Different identifiers and different functions must not match.
        let f = lint("let a = dfs::write();\nlet b = fs::write_at();\nlet c = MyFile::create();");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d6_ignores_reads_and_dir_ops() {
        let f = lint("let s = fs::read_to_string(p)?;\nfs::create_dir_all(dir)?;\nlet f = File::open(p)?;");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d6_is_test_exempt() {
        let cfg = LintConfig::builtin();
        let file = analyze("x.rs", "fs::write(&golden, bytes).unwrap();", true);
        let f = run(&file, &cfg);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let f = lint("// Instant::now and HashMap discussion\nlet s = \"thread_rng seed_from_u64 std::collections::HashMap\";");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_lines_are_exempt_from_d2_d3_d4_but_not_d1() {
        let cfg = LintConfig::builtin();
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\nv.sort_by(|a, b| a.partial_cmp(b).unwrap());";
        let file = analyze("x.rs", src, true);
        let f = run(&file, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::D1);
    }

    // --- D7 ----------------------------------------------------------

    fn lint_d7(src: &str) -> Vec<RawFinding> {
        lint_at("crates/campaign/src/x.rs", src)
    }

    #[test]
    fn d7_fires_on_unwrap_expect_in_scope() {
        let f = lint_d7("let a = x.unwrap();\nlet b = y.expect(\"msg\");");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::D7));
    }

    #[test]
    fn d7_is_scoped_to_configured_trees() {
        let f = lint_at("crates/radio/src/x.rs", "let a = x.unwrap();");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d7_fires_on_panic_macros() {
        let f = lint_d7("panic!(\"boom\");\nunreachable!();\ntodo!();");
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::D7));
    }

    #[test]
    fn d7_fires_on_slice_index() {
        let f = lint_d7("let v = xs[i];\nlet w = grid[r][c];");
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::D7));
    }

    #[test]
    fn d7_skips_attrs_types_patterns_and_full_range() {
        let src = "#[derive(Clone)]\nstruct S { a: [u8; 4] }\nfn f(xs: &[u64]) -> &[u64] { &xs[..] }\nlet v = vec![1, 2];\nlet [a, b] = pair;";
        let f = lint_d7(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d7_unwrap_or_variants_are_fine() {
        let f = lint_d7("let a = x.unwrap_or(0);\nlet b = y.unwrap_or_else(|| 1);\nlet c = z.unwrap_or_default();");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d7_is_test_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let a = x.unwrap(); panic!(\"in test\"); }\n}\n";
        let f = lint_d7(src);
        assert!(f.is_empty(), "{f:?}");
    }

    // --- D8 ----------------------------------------------------------

    fn d8_cfg() -> LintConfig {
        let mut cfg = LintConfig::builtin();
        cfg.hotpaths = vec!["Hot::advance".to_string(), "hot_free".to_string()];
        cfg
    }

    fn finalize_one(rel: &str, src: &str, cfg: &LintConfig) -> Vec<RawFinding> {
        let files = vec![analyze(rel, src, false)];
        finalize(&files, cfg).into_iter().map(|(_, f)| f).collect()
    }

    #[test]
    fn d8_fires_on_direct_allocation() {
        let src = "impl Hot {\n    fn advance(&mut self) {\n        let v = Vec::new();\n        let s = format!(\"x\");\n        let t = x.to_string();\n        let w = vec![0u8; 4];\n    }\n}\n";
        let f = finalize_one("x.rs", src, &d8_cfg());
        assert_eq!(f.len(), 4, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::D8));
    }

    #[test]
    fn d8_fires_one_level_transitive() {
        let src = "fn hot_free(buf: &mut [u8]) {\n    helper(buf);\n}\nfn helper(buf: &mut [u8]) {\n    let s = format!(\"{}\", buf.len());\n}\n";
        let f = finalize_one("x.rs", src, &d8_cfg());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::D8);
        assert_eq!(f[0].line, 2, "attributed to the call site in the hot fn");
        assert!(f[0].message.contains("one level deep"));
    }

    #[test]
    fn d8_ignores_cold_functions_and_clean_hot_paths() {
        let src = "fn cold() { let v = Vec::new(); }\nimpl Hot {\n    fn advance(&mut self) {\n        self.scratch.clear();\n        self.scratch.push(1);\n    }\n}\n";
        let f = finalize_one("x.rs", src, &d8_cfg());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d8_turbofish_collect_is_caught() {
        let src = "fn hot_free(xs: &[u64]) {\n    let v = xs.iter().collect::<Vec<_>>();\n}\n";
        let f = finalize_one("x.rs", src, &d8_cfg());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("collect"));
    }

    #[test]
    fn d8_ambiguous_cross_file_callee_is_skipped() {
        let cfg = d8_cfg();
        let files = vec![
            analyze("a.rs", "fn hot_free() { shared(); }\n", false),
            analyze("b.rs", "fn shared() { let v = Vec::new(); }\n", false),
            analyze("c.rs", "fn shared() { }\n", false),
        ];
        let f = finalize(&files, &cfg);
        assert!(f.is_empty(), "ambiguous `shared` must not be guessed: {f:?}");
    }

    #[test]
    fn d8_method_calls_never_resolve_across_files() {
        // `w.finish()` is a method on an unknown receiver type; a free
        // `fn finish` in another file must not be bound to it, even
        // when it is the only `finish` in the analyzed set.
        let cfg = d8_cfg();
        let files = vec![
            analyze("a.rs", "fn hot_free() { w.finish(); }\n", false),
            analyze("b.rs", "fn finish() { let s = format!(\"x\"); }\n", false),
        ];
        let f = finalize(&files, &cfg);
        assert!(f.is_empty(), "method call bound across files: {f:?}");
    }

    #[test]
    fn d8_method_calls_still_resolve_same_file() {
        // Same-file resolution keeps working for `self.helper()` calls:
        // the impl is usually in the same module as its helpers.
        let cfg = d8_cfg();
        let files = vec![analyze(
            "a.rs",
            "fn hot_free() { s.helper(); }\nfn helper() { let v = Vec::new(); }\n",
            false,
        )];
        let f = finalize(&files, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn d8_unique_cross_file_callee_is_resolved() {
        let cfg = d8_cfg();
        let files = vec![
            analyze("a.rs", "fn hot_free() {\n    uniquely_named();\n}\n", false),
            analyze("b.rs", "fn uniquely_named() { let s = x.to_string(); }\n", false),
        ];
        let f = finalize(&files, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].0, 0, "finding lands in the hot fn's file");
        assert_eq!(f[0].1.line, 2);
    }

    // --- D9 ----------------------------------------------------------

    fn d9_cfg() -> LintConfig {
        let mut cfg = LintConfig::builtin();
        cfg.rng_module = "src/rng.rs".to_string();
        cfg.rng_arity = vec![("DOMAIN_PHONE".to_string(), 2)];
        cfg
    }

    #[test]
    fn d9_decl_outside_module_fires() {
        let f = finalize_one("src/other.rs", "pub const DOMAIN_ROGUE: u64 = 7;\n", &d9_cfg());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::D9);
        assert!(f[0].message.contains("outside"));
    }

    #[test]
    fn d9_duplicate_decl_fires() {
        let src = "pub const DOMAIN_A: u64 = 1;\npub const DOMAIN_A: u64 = 2;\n";
        let f = finalize_one("src/rng.rs", src, &d9_cfg());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("redeclared"));
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn d9_undeclared_use_fires_when_module_present() {
        let cfg = d9_cfg();
        let files = vec![
            analyze("src/rng.rs", "pub const DOMAIN_A: u64 = 1;\n", false),
            analyze(
                "src/user.rs",
                "let s = derive_seed(seed, DOMAIN_GHOST, &[1]);\n",
                false,
            ),
        ];
        let f = finalize(&files, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].0, 1);
        assert!(f[0].1.message.contains("not declared"));
    }

    #[test]
    fn d9_undeclared_check_needs_the_module() {
        // A lone file using a domain must not fire: the declaring module
        // simply is not part of this (single-file) analysis.
        let f = finalize_one(
            "src/user.rs",
            "let s = derive_seed(seed, DOMAIN_PHONE, &[a, b]);\n",
            &d9_cfg(),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d9_pinned_arity_mismatch_fires() {
        let f = finalize_one(
            "src/user.rs",
            "let s = derive_seed(seed, DOMAIN_PHONE, &[a]);\n",
            &d9_cfg(),
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("registered arity is 2"), "{}", f[0].message);
    }

    #[test]
    fn d9_unpinned_arity_anchors_on_first_site() {
        let src = "fn a() { derive_seed(s, DOMAIN_FREE, &[x]); }\nfn b() { derive_seed(s, DOMAIN_FREE, &[x, y]); }\n";
        let f = finalize_one("src/user.rs", src, &d9_cfg());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn d9_non_literal_slice_is_unknown_arity() {
        let f = finalize_one(
            "src/user.rs",
            "let s = derive_seed(seed, DOMAIN_PHONE, &words);\n",
            &d9_cfg(),
        );
        assert!(f.is_empty(), "non-literal key slices are not checkable: {f:?}");
    }

    #[test]
    fn d9_stream_sites_are_checked_and_defs_are_not() {
        let cfg = d9_cfg();
        let src = "pub const DOMAIN_A: u64 = 1;\npub fn stream(seed: u64, d: u64, w: &[u64]) -> u64 { 0 }\nfn use_site() { stream(s, DOMAIN_A, &[1, 2, 3]); }\n";
        let f = finalize_one("src/rng.rs", src, &cfg);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d9_test_code_is_exempt() {
        let cfg = d9_cfg();
        let src = "pub const DOMAIN_A: u64 = 1;\n#[cfg(test)]\nmod tests {\n    fn t() {\n        derive_seed(s, DOMAIN_A, &[1]);\n        derive_seed(s, DOMAIN_A, &[1, 2]);\n    }\n}\n";
        let f = finalize_one("src/rng.rs", src, &cfg);
        assert!(f.is_empty(), "{f:?}");
    }
}
