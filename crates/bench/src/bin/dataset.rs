//! Generate and export the dataset (the paper publishes its dataset and
//! scripts; this is ours).
//!
//! ```text
//! cargo run --release -p wheels-bench --bin dataset -- --out data/ --scale quarter
//! ```
//!
//! Writes:
//! * `dataset.json` — the full consolidated database;
//! * `throughput.csv` — one row per 500 ms throughput sample;
//! * `drm/XCAL_*.drm` — per-test binary XCAL logs (round-trip verified);
//! * `summary.txt` — Table-1-style statistics.

use std::fs;
use std::path::{Path, PathBuf};

use wheels_bench::{run_campaign, ReproScale};
use wheels_campaign::stats::Table1;
use wheels_campaign::{atomic_write, atomic_write_with, write_all_chunked};
use wheels_xcal::logger::XcalLogger;
use wheels_xcal::{drm, export};

/// Atomic write or exit 1 — a dataset file either appears whole or not
/// at all, even if this process dies mid-export.
fn write_or_die(path: &Path, bytes: &[u8]) {
    if let Err(e) = atomic_write(path, bytes) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("dataset_out");
    let mut scale = ReproScale::Smoke;
    let mut seed = 2026u64;
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        match arg.as_str() {
            "--out" => {
                i += 1;
                // lint:allow(D7): CLI flag validation aborts at startup, before any campaign unit runs
                out = PathBuf::from(args.get(i).expect("--out needs a path"));
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("full") => ReproScale::Full,
                    Some("quarter") => ReproScale::Quarter,
                    Some("smoke") => ReproScale::Smoke,
                    // lint:allow(D7): CLI flag validation aborts at startup, before any campaign unit runs
                    other => panic!("unknown scale {other:?}"),
                };
            }
            "--seed" => {
                i += 1;
                // lint:allow(D7): CLI flag validation aborts at startup, before any campaign unit runs
                seed = args.get(i).and_then(|s| s.parse().ok()).expect("--seed N");
            }
            // lint:allow(D7): CLI flag validation aborts at startup, before any campaign unit runs
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    eprintln!("running campaign at {scale:?} (seed {seed})...");
    let (campaign, db) = run_campaign(scale, seed);
    // lint:allow(D7): dev-tool setup; an unwritable output directory should abort before the export starts
    fs::create_dir_all(out.join("drm")).expect("create output directory");

    // JSON, streamed straight into the atomic temp file — no whole-file
    // buffer even at full scale.
    let json_path = out.join("dataset.json");
    let parts = export::to_json_parts(&db, 1);
    let json_bytes: usize = parts.iter().map(String::len).sum();
    if let Err(e) = atomic_write_with(&json_path, |w| {
        for p in &parts {
            write_all_chunked(w, p.as_bytes())?;
        }
        Ok(())
    }) {
        eprintln!("cannot write {}: {e}", json_path.display());
        std::process::exit(1);
    }
    eprintln!("wrote dataset.json ({} MB)", json_bytes / 1_000_000);

    // CSV, same streaming discipline (write_tput_csv buffers internally).
    let csv_path = out.join("throughput.csv");
    if let Err(e) = atomic_write_with(&csv_path, |w| export::write_tput_csv(&db, w)) {
        eprintln!("cannot write {}: {e}", csv_path.display());
        std::process::exit(1);
    }
    let rows = db
        .records
        .iter()
        .flat_map(|r| &r.kpi)
        .filter(|k| k.tput_mbps.is_some())
        .count();
    eprintln!("wrote throughput.csv ({rows} rows)");

    // Binary .drm files, round-trip verified.
    let mut n_drm = 0usize;
    let mut drm_bytes = 0usize;
    for r in &db.records {
        let mut logger = XcalLogger::start(r.op, r.kind.label(), r.start_s);
        for k in &r.kpi {
            logger.log_sample(*k);
        }
        for h in &r.handovers {
            logger.log_handover(h);
        }
        let log = logger.finish(r.timezone);
        let bytes = drm::encode(&log);
        // lint:allow(D7): round-trip self-check in a dev tool — a decode failure is a codec bug worth aborting on
        let back = drm::decode(&bytes).expect("own encoding decodes");
        assert_eq!(back.samples.len(), log.samples.len(), "drm round trip");
        // Disambiguate concurrent per-operator files with the test id.
        let name = format!("{:06}_{}", r.id, log.file_name);
        drm_bytes += bytes.len();
        write_or_die(&out.join("drm").join(name), &bytes);
        n_drm += 1;
    }
    eprintln!("wrote {n_drm} .drm files ({} MB), all round-trip verified", drm_bytes / 1_000_000);

    // Summary.
    let t1 = Table1::compute(&db, campaign.plan().route());
    write_or_die(&out.join("summary.txt"), t1.render().as_bytes());
    eprintln!("wrote summary.txt");
    println!("{}", t1.render());
}
