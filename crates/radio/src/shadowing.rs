//! Spatially correlated log-normal shadowing (Gudmundson model).
//!
//! Drive-test RSRP wobbles smoothly as the vehicle moves: obstructions come
//! and go over tens to hundreds of meters. We model shadowing as a
//! first-order autoregressive Gaussian process over *odometer distance*:
//!
//! `S(d + Δ) = ρ·S(d) + sqrt(1 − ρ²)·σ·Z`, with `ρ = exp(−Δ/D_corr)`.
//!
//! Each (cell, UE) pair gets an independent field seeded from the pair's
//! identity, so the process is deterministic and can be evaluated lazily at
//! whatever odometer positions the simulation visits (monotonically).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cache for the AR(1) advance coefficients `ρ = exp(−Δ/D_corr)` and
/// `k = sqrt(1 − ρ²)·σ`, keyed on the exact bit patterns of the inputs.
///
/// Many shadowing fields advance by the same Δ in one simulation tick
/// (every cell in the audible window is queried at the same odometer each
/// step), so the `exp`/`sqrt` pair can be shared across fields with equal
/// (Δ, D_corr, σ). Keying on bit patterns keeps [`ShadowingField::at_memo`]
/// bit-identical to [`ShadowingField::at`]: a memo hit replays exactly the
/// values a miss would compute.
#[derive(Debug, Clone)]
pub struct RhoMemo {
    delta_m: f64,
    corr_dist_m: f64,
    sigma_db: f64,
    rho: f64,
    k: f64,
}

impl Default for RhoMemo {
    fn default() -> Self {
        // NaN never bit-matches a real Δ, so the first lookup always fills.
        RhoMemo {
            delta_m: f64::NAN,
            corr_dist_m: f64::NAN,
            sigma_db: f64::NAN,
            rho: 0.0,
            k: 0.0,
        }
    }
}

impl RhoMemo {
    #[inline]
    fn coeffs(&mut self, delta_m: f64, corr_dist_m: f64, sigma_db: f64) -> (f64, f64) {
        if self.delta_m.to_bits() != delta_m.to_bits()
            || self.corr_dist_m.to_bits() != corr_dist_m.to_bits()
            || self.sigma_db.to_bits() != sigma_db.to_bits()
        {
            self.delta_m = delta_m;
            self.corr_dist_m = corr_dist_m;
            self.sigma_db = sigma_db;
            self.rho = (-delta_m / corr_dist_m).exp();
            self.k = (1.0 - self.rho * self.rho).sqrt() * sigma_db;
        }
        (self.rho, self.k)
    }
}

/// A lazily evaluated AR(1) shadowing process over distance.
#[derive(Debug, Clone)]
pub struct ShadowingField {
    sigma_db: f64,
    corr_dist_m: f64,
    rng: SmallRng,
    last_d_m: f64,
    last_value_db: f64,
    initialized: bool,
}

impl ShadowingField {
    /// Create a field with std-dev `sigma_db` and decorrelation distance
    /// `corr_dist_m`, seeded deterministically.
    pub fn new(sigma_db: f64, corr_dist_m: f64, seed: u64) -> Self {
        assert!(sigma_db >= 0.0 && corr_dist_m > 0.0);
        ShadowingField {
            sigma_db,
            corr_dist_m,
            // lint:allow(D4): field seed is (UE seed ^ cell id) with the
            // UE seed netsim::rng-derived; the multiplier only decorrelates
            rng: SmallRng::seed_from_u64(seed.wrapping_mul(0xA24B_AED4_963E_E407)),
            last_d_m: 0.0,
            last_value_db: 0.0,
            initialized: false,
        }
    }

    /// Shadowing in dB at odometer distance `d_m`.
    ///
    /// Must be called with non-decreasing `d_m` (the vehicle only moves
    /// forward); a repeated distance returns the same value.
    pub fn at(&mut self, d_m: f64) -> f64 {
        if !self.initialized {
            self.initialized = true;
            self.last_d_m = d_m;
            self.last_value_db = self.gauss() * self.sigma_db;
            return self.last_value_db;
        }
        let delta = d_m - self.last_d_m;
        debug_assert!(delta >= -1e-9, "shadowing evaluated backwards: {delta}");
        if delta <= 0.0 {
            return self.last_value_db;
        }
        let rho = (-delta / self.corr_dist_m).exp();
        self.last_value_db =
            rho * self.last_value_db + (1.0 - rho * rho).sqrt() * self.sigma_db * self.gauss();
        self.last_d_m = d_m;
        self.last_value_db
    }

    /// Same process as [`ShadowingField::at`], with the AR advance
    /// coefficients cached in `memo` across calls (and across fields).
    ///
    /// Bit-identical to `at`: the advance `ρ·S + sqrt(1−ρ²)·σ·Z` evaluates
    /// left-associatively, so hoisting `k = sqrt(1−ρ²)·σ` changes no
    /// rounding, and the memo only replays coefficients computed from
    /// bit-equal inputs.
    pub fn at_memo(&mut self, d_m: f64, memo: &mut RhoMemo) -> f64 {
        if !self.initialized {
            self.initialized = true;
            self.last_d_m = d_m;
            self.last_value_db = self.gauss() * self.sigma_db;
            return self.last_value_db;
        }
        let delta = d_m - self.last_d_m;
        debug_assert!(delta >= -1e-9, "shadowing evaluated backwards: {delta}");
        if delta <= 0.0 {
            return self.last_value_db;
        }
        let (rho, k) = memo.coeffs(delta, self.corr_dist_m, self.sigma_db);
        self.last_value_db = rho * self.last_value_db + k * self.gauss();
        self.last_d_m = d_m;
        self.last_value_db
    }

    /// Fill `out` with the field sampled at `start_d_m`, `start_d_m +
    /// step_m`, `start_d_m + 2·step_m`, …
    ///
    /// Byte-identical to the per-tick loop `d += step_m; at(d)` — distances
    /// accumulate the same way, so every Δ (and thus every ρ) has the same
    /// bit pattern — but amortizes the `exp`/`sqrt` per span instead of per
    /// sample.
    pub fn fill_span(&mut self, start_d_m: f64, step_m: f64, out: &mut [f64]) {
        let mut memo = RhoMemo::default();
        let mut d = start_d_m;
        for (i, o) in out.iter_mut().enumerate() {
            if i > 0 {
                d += step_m;
            }
            *o = self.at_memo(d, &mut memo);
        }
    }

    /// Std-dev of the marginal distribution, dB.
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// Approximate standard normal via sum of uniforms (Irwin–Hall with
    /// n = 12): cheap, deterministic, tails adequate for shadowing.
    fn gauss(&mut self) -> f64 {
        gauss(&mut self.rng)
    }
}

/// A bank of many [`ShadowingField`]-equivalent processes sharing one
/// (σ, D_corr), stored struct-of-arrays and advanced span-at-a-time.
///
/// The per-tick candidate scan advances every audible cell's field at the
/// same odometer. The bank keeps generator state, last distance, and last
/// value in dense position-indexed arrays so one [`ShadowBank::advance_span`]
/// call walks a contiguous window with no per-field lookup, sharing the AR
/// coefficients through a [`RhoMemo`]. Each field consumes its own stream
/// in its own order, so every value is bit-identical to a standalone
/// [`ShadowingField`] fed the same seed and distance sequence (a test pins
/// this).
#[derive(Debug, Clone)]
pub struct ShadowBank {
    sigma_db: f64,
    corr_dist_m: f64,
    rng: Vec<SmallRng>,
    last_d_m: Vec<f64>,
    val: Vec<f64>,
    live: Vec<bool>,
    memo: RhoMemo,
    /// Scratch: values returned from the current call.
    out: Vec<f64>,
}

impl ShadowBank {
    /// A bank with the given marginal std-dev and decorrelation distance.
    pub fn new(sigma_db: f64, corr_dist_m: f64) -> Self {
        assert!(sigma_db >= 0.0 && corr_dist_m > 0.0);
        ShadowBank {
            sigma_db,
            corr_dist_m,
            rng: Vec::new(),
            last_d_m: Vec::new(),
            val: Vec::new(),
            live: Vec::new(),
            memo: RhoMemo::default(),
            out: Vec::new(),
        }
    }

    fn ensure_len(&mut self, len: usize) {
        if self.live.len() < len {
            // Placeholder generators; a slot's real generator is seeded the
            // first time the slot goes live.
            // lint:allow(D4): inert placeholder, overwritten before any draw
            self.rng.resize_with(len, || SmallRng::seed_from_u64(0));
            self.last_d_m.resize(len, 0.0);
            self.val.resize(len, 0.0);
            self.live.resize(len, false);
        }
    }

    /// Advance the fields at `positions` to odometer `d_m` and return their
    /// values, in position order. `seed_of` supplies the field seed for a
    /// position the first time it goes live (same derivation a standalone
    /// [`ShadowingField::new`] would receive).
    pub fn advance_span(
        &mut self,
        positions: std::ops::Range<usize>,
        d_m: f64,
        mut seed_of: impl FnMut(usize) -> u64,
    ) -> &[f64] {
        self.ensure_len(positions.end);
        self.out.clear();
        for pos in positions {
            let v = if !self.live[pos] {
                self.live[pos] = true;
                // lint:allow(D4): same (UE seed ^ cell id) derivation and
                // decorrelating multiplier as ShadowingField::new
                self.rng[pos] = SmallRng::seed_from_u64(
                    seed_of(pos).wrapping_mul(0xA24B_AED4_963E_E407),
                );
                let v = gauss(&mut self.rng[pos]) * self.sigma_db;
                self.val[pos] = v;
                self.last_d_m[pos] = d_m;
                v
            } else {
                let delta = d_m - self.last_d_m[pos];
                debug_assert!(delta >= -1e-9, "shadowing evaluated backwards");
                if delta <= 0.0 {
                    self.val[pos]
                } else {
                    let (rho, k) = self.memo.coeffs(delta, self.corr_dist_m, self.sigma_db);
                    let v = rho * self.val[pos] + k * gauss(&mut self.rng[pos]);
                    self.val[pos] = v;
                    self.last_d_m[pos] = d_m;
                    v
                }
            };
            self.out.push(v);
        }
        &self.out
    }

    /// Advance a single field (convenience wrapper over `advance_span`).
    pub fn advance_one(&mut self, pos: usize, d_m: f64, seed: u64) -> f64 {
        self.advance_span(pos..pos + 1, d_m, |_| seed)[0]
    }

    /// Whether the field at `pos` is live.
    pub fn is_live(&self, pos: usize) -> bool {
        self.live.get(pos).copied().unwrap_or(false)
    }

    /// Number of live fields.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Deactivate every live field last advanced before `min_d_m`.
    pub fn retire_before(&mut self, min_d_m: f64) {
        for (pos, l) in self.live.iter_mut().enumerate() {
            if *l && self.last_d_m[pos] < min_d_m {
                *l = false;
            }
        }
    }
}

/// Approximate standard normal via sum of 12 uniforms (Irwin–Hall), the
/// same kernel [`ShadowingField`] uses.
fn gauss(rng: &mut SmallRng) -> f64 {
    let mut s = 0.0;
    for _ in 0..12 {
        s += rng.gen::<f64>();
    }
    s - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_statistics() {
        let mut f = ShadowingField::new(6.0, 50.0, 99);
        let mut vals = Vec::new();
        let mut d = 0.0;
        for _ in 0..20_000 {
            d += 100.0; // well beyond decorrelation -> near-iid samples
            vals.push(f.at(d));
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.3, "mean {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.5, "std {}", var.sqrt());
    }

    #[test]
    fn nearby_samples_correlated() {
        let mut f = ShadowingField::new(6.0, 100.0, 7);
        let a = f.at(1_000.0);
        let b = f.at(1_001.0); // 1 m later: almost identical
        assert!((a - b).abs() < 2.0);
    }

    #[test]
    fn repeated_distance_stable() {
        let mut f = ShadowingField::new(6.0, 100.0, 7);
        let a = f.at(500.0);
        let b = f.at(500.0);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut f1 = ShadowingField::new(6.0, 100.0, 1234);
        let mut f2 = ShadowingField::new(6.0, 100.0, 1234);
        for d in [0.0, 10.0, 200.0, 5_000.0] {
            assert_eq!(f1.at(d), f2.at(d));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut f1 = ShadowingField::new(6.0, 100.0, 1);
        let mut f2 = ShadowingField::new(6.0, 100.0, 2);
        assert_ne!(f1.at(100.0), f2.at(100.0));
    }

    #[test]
    fn at_memo_bit_identical_to_at() {
        let mut plain = ShadowingField::new(6.0, 60.0, 4242);
        let mut memoed = ShadowingField::new(6.0, 60.0, 4242);
        let mut memo = RhoMemo::default();
        // Mixed schedule: repeated step, step change, zero step, big jump.
        let ds = [0.0, 2.5, 5.0, 7.5, 7.5, 8.0, 500.0, 502.5, 505.0];
        for &d in &ds {
            assert_eq!(
                plain.at(d).to_bits(),
                memoed.at_memo(d, &mut memo).to_bits(),
                "diverged at d={d}"
            );
        }
    }

    #[test]
    fn memo_shared_across_fields_is_transparent() {
        // One memo serving many fields (the hot-path usage) must not leak
        // state between them.
        let mut memo = RhoMemo::default();
        for seed in 0..8u64 {
            let mut plain = ShadowingField::new(5.5, 90.0, seed);
            let mut memoed = ShadowingField::new(5.5, 90.0, seed);
            let mut d = 0.0;
            for _ in 0..50 {
                d += 3.7;
                assert_eq!(plain.at(d).to_bits(), memoed.at_memo(d, &mut memo).to_bits());
            }
        }
    }

    #[test]
    fn fill_span_matches_per_tick() {
        let mut plain = ShadowingField::new(7.0, 25.0, 99);
        let mut batched = ShadowingField::new(7.0, 25.0, 99);
        // Warm both up so the span starts mid-process.
        assert_eq!(plain.at(10.0).to_bits(), batched.at(10.0).to_bits());
        let (start, step, n) = (12.0, 0.1, 257);
        let mut expect = Vec::with_capacity(n);
        let mut d = start;
        for i in 0..n {
            if i > 0 {
                d += step;
            }
            expect.push(plain.at(d));
        }
        let mut got = vec![0.0; n];
        batched.fill_span(start, step, &mut got);
        for (i, (e, g)) in expect.iter().zip(&got).enumerate() {
            assert_eq!(e.to_bits(), g.to_bits(), "sample {i}");
        }
    }

    #[test]
    fn bank_bit_identical_to_standalone_fields() {
        // A bank advancing a drifting window of fields must reproduce each
        // standalone field exactly: same seeds, same distance sequence,
        // same bits — inits, repeats, and batched advances alike.
        let seed_of = |pos: usize| 1000 + pos as u64 * 7;
        let mut bank = ShadowBank::new(5.5, 90.0);
        let mut reference: Vec<ShadowingField> = (0..40)
            .map(|p| ShadowingField::new(5.5, 90.0, seed_of(p)))
            .collect();
        let mut d = 0.0;
        for step in 0..400usize {
            d += 2.3;
            // Window slides forward one position every 20 steps.
            let lo = step / 20;
            let hi = (lo + 12).min(40);
            let got = bank.advance_span(lo..hi, d, seed_of).to_vec();
            for (j, pos) in (lo..hi).enumerate() {
                let want = reference[pos].at(d);
                assert_eq!(want.to_bits(), got[j].to_bits(), "pos {pos} step {step}");
            }
            // Occasionally re-query the same distance (repeat path).
            if step % 7 == 0 {
                let again = bank.advance_span(lo..hi, d, seed_of).to_vec();
                assert_eq!(got, again);
            }
        }
    }

    #[test]
    fn bank_retire_before_drops_stale_fields() {
        let mut bank = ShadowBank::new(6.0, 60.0);
        let _ = bank.advance_span(0..10, 100.0, |p| p as u64);
        let _ = bank.advance_span(5..15, 900.0, |p| p as u64);
        bank.retire_before(500.0);
        assert_eq!(bank.live_count(), 10, "positions 5..15 stay live");
        assert!(!bank.is_live(0) && bank.is_live(5) && bank.is_live(14));
    }

    #[test]
    fn empirical_autocorrelation_decays() {
        // Samples 10 m apart should correlate far more than samples 500 m
        // apart, for a 100 m decorrelation distance.
        let corr_at = |step: f64| {
            let mut f = ShadowingField::new(6.0, 100.0, 42);
            let mut prev = f.at(0.0);
            let mut num = 0.0;
            let mut den = 0.0;
            let mut d = 0.0;
            for _ in 0..50_000 {
                d += step;
                let v = f.at(d);
                num += prev * v;
                den += v * v;
                prev = v;
            }
            num / den
        };
        let near = corr_at(10.0);
        let far = corr_at(500.0);
        assert!(near > 0.8, "near {near}");
        assert!(far < 0.2, "far {far}");
    }
}
