//! Cell sites and the per-operator cell database.
//!
//! Cells are indexed by their closest-approach odometer position along the
//! route, one sorted layer per technology, so the simulator can query
//! "which cells can I hear at odometer X" with a binary search. Table 1 of
//! the paper counts 3,020 / 4,038 / 3,150 unique cells connected for
//! Verizon / T-Mobile / AT&T — our deployment generator produces databases
//! of comparable density.

use wheels_radio::band::Technology;

use crate::operator::Operator;

/// Globally unique cell identifier (unique across operators and layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct CellId(pub u32);

/// One cell site (one sector of one gNB/eNB on one layer).
#[derive(Debug, Clone, Copy)]
pub struct CellSite {
    /// Unique id.
    pub id: CellId,
    /// Owning operator.
    pub op: Operator,
    /// Radio technology of this layer.
    pub tech: Technology,
    /// Odometer position of the site's closest approach to the road, m.
    pub odometer_m: f64,
    /// Lateral offset from the road, m (towers are rarely on the shoulder).
    pub lateral_m: f64,
    /// Per-resource-element EIRP, dBm (channel EIRP normalized per RE, the
    /// quantity RSRP budgets use).
    pub eirp_re_dbm: f64,
}

impl CellSite {
    /// 3-D-ish distance from a UE at odometer `od_m`, meters.
    pub fn distance_m(&self, od_m: f64) -> f64 {
        let along = od_m - self.odometer_m;
        (along * along + self.lateral_m * self.lateral_m).sqrt()
    }
}

/// All cells of one operator, organized per technology layer and sorted by
/// odometer.
#[derive(Debug, Clone)]
pub struct CellDb {
    op: Operator,
    /// One sorted vector per technology (index = position in
    /// `Technology::ALL`).
    layers: [Vec<CellSite>; 5],
}

impl CellDb {
    /// Build a database from an unsorted site list.
    ///
    /// # Panics
    /// Panics if any site belongs to a different operator.
    pub fn new(op: Operator, mut sites: Vec<CellSite>) -> Self {
        assert!(
            sites.iter().all(|s| s.op == op),
            "site list contains foreign operator"
        );
        sites.sort_by(|a, b| a.odometer_m.total_cmp(&b.odometer_m));
        let mut layers: [Vec<CellSite>; 5] = Default::default();
        for s in sites {
            let li = tech_index(s.tech);
            layers[li].push(s);
        }
        CellDb { op, layers }
    }

    /// The operator this database belongs to.
    pub fn op(&self) -> Operator {
        self.op
    }

    /// Total number of cells across all layers.
    pub fn len(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// True if no cells at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of cells on one technology layer.
    pub fn layer_len(&self, tech: Technology) -> usize {
        self.layers[tech_index(tech)].len()
    }

    /// Cells of `tech` whose closest approach lies within `window_m` of
    /// `od_m`, in odometer order.
    pub fn cells_near(&self, tech: Technology, od_m: f64, window_m: f64) -> &[CellSite] {
        let layer = &self.layers[tech_index(tech)];
        let lo = layer.partition_point(|s| s.odometer_m < od_m - window_m);
        let hi = layer.partition_point(|s| s.odometer_m <= od_m + window_m);
        &layer[lo..hi]
    }

    /// The strongest candidate of `tech` near `od_m` by plain distance
    /// (before shadowing): used for availability pre-checks.
    pub fn nearest_cell(&self, tech: Technology, od_m: f64) -> Option<&CellSite> {
        let window = tech.nominal_range_m() * 2.0;
        self.cells_near(tech, od_m, window)
            .iter()
            .min_by(|a, b| a.distance_m(od_m).total_cmp(&b.distance_m(od_m)))
    }
}

/// Index of a technology in [`Technology::ALL`].
pub fn tech_index(tech: Technology) -> usize {
    Technology::ALL
        .iter()
        .position(|&t| t == tech)
        .expect("technology is one of the five known kinds")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(id: u32, tech: Technology, od: f64) -> CellSite {
        CellSite {
            id: CellId(id),
            op: Operator::Verizon,
            tech,
            odometer_m: od,
            lateral_m: 100.0,
            eirp_re_dbm: 30.0,
        }
    }

    #[test]
    fn cells_near_returns_window() {
        let db = CellDb::new(
            Operator::Verizon,
            vec![
                site(1, Technology::Lte, 1_000.0),
                site(2, Technology::Lte, 5_000.0),
                site(3, Technology::Lte, 9_000.0),
                site(4, Technology::Nr5gMid, 5_100.0),
            ],
        );
        let near = db.cells_near(Technology::Lte, 5_000.0, 2_000.0);
        assert_eq!(near.len(), 1);
        assert_eq!(near[0].id, CellId(2));
        let wide = db.cells_near(Technology::Lte, 5_000.0, 5_000.0);
        assert_eq!(wide.len(), 3);
        // Different layer is not mixed in.
        assert_eq!(db.cells_near(Technology::Nr5gMid, 5_000.0, 2_000.0).len(), 1);
    }

    #[test]
    fn nearest_cell_picks_closest() {
        let db = CellDb::new(
            Operator::Verizon,
            vec![
                site(1, Technology::Lte, 1_000.0),
                site(2, Technology::Lte, 4_000.0),
            ],
        );
        assert_eq!(
            db.nearest_cell(Technology::Lte, 3_500.0).unwrap().id,
            CellId(2)
        );
    }

    #[test]
    fn nearest_cell_none_when_layer_empty() {
        let db = CellDb::new(Operator::Verizon, vec![site(1, Technology::Lte, 0.0)]);
        assert!(db.nearest_cell(Technology::Nr5gMmWave, 0.0).is_none());
    }

    #[test]
    fn distance_includes_lateral() {
        let s = site(1, Technology::Lte, 1_000.0);
        assert!((s.distance_m(1_000.0) - 100.0).abs() < 1e-9);
        let d = s.distance_m(1_300.0);
        assert!((d - (300.0f64 * 300.0 + 100.0 * 100.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "foreign operator")]
    fn foreign_operator_rejected() {
        let mut s = site(1, Technology::Lte, 0.0);
        s.op = Operator::Att;
        let _ = CellDb::new(Operator::Verizon, vec![s]);
    }
}
