//! The UE radio: ties deployment, selection, policy, load and handovers
//! into a per-tick link state.
//!
//! One [`UeRadio`] models one phone on one operator. The campaign steps it
//! along the drive (typically every 100–500 ms while a test is running) and
//! receives [`LinkSnapshot`]s carrying everything XCAL would log: serving
//! technology and cell, RSRP, SINR, MCS, BLER, CA count, deliverable
//! capacity per direction, and handover events as they execute.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;

use wheels_geo::region::RegionKind;
use wheels_geo::timezone::Timezone;
use wheels_geo::trip::DriveState;
use wheels_radio::band::Technology;
use wheels_radio::bler::bler_from_sinr;

use wheels_radio::pathloss::PathLossModel;

use crate::cell::{CellDb, CellId, WindowCursor};
use crate::config::{link_config_ref, link_noise_lin, LinkConfig};
use crate::fleet::FleetLoad;
use crate::handover::{draw_interruption_ms, A3Tracker, HandoverEvent, HandoverKind};
use crate::load::{LoadParams, LoadProcess};
use crate::operator::Operator;
use crate::policy::{TrafficDemand, UpgradePolicy};
use crate::selection::{
    evaluate_layer_span, layer_clutter, sinr_db_with_noise_lin, sub_rng, LayerCandidate,
    ShadowStore,
};
use crate::tuning::OperatorTuning;
use crate::Direction;

/// Tuning knobs for a UE instance.
#[derive(Debug, Clone)]
pub struct UeParams {
    /// Load process parameters (same for both directions).
    pub load: LoadParams,
    /// Policy re-evaluation interval bounds, seconds.
    pub policy_interval_s: (f64, f64),
    /// Clutter multiplier: 1.0 while driving; ~0.25 for static baseline
    /// tests where the tester positions the phone facing the BS with a
    /// clear line of sight (§5.1).
    pub clutter_scale: f64,
    /// Probability per policy evaluation of a network-initiated
    /// load-balancing handover to a roughly-equal neighbor (no A3 signal
    /// advantage). These are why the paper finds post-HO throughput
    /// *lower* than pre-HO ~25 % of the time — not every HO is for the
    /// UE's benefit.
    pub load_balance_ho_prob: f64,
    /// Shadowing fields for cells last heard more than this far behind the
    /// vehicle are dropped. Must exceed the widest layer query window
    /// (14 km) so pruning never changes output; `f64::INFINITY` disables
    /// pruning entirely (used by equivalence tests).
    pub shadow_keep_window_m: f64,
    /// Live subscriber-fleet load, shared per operator. `None` (the
    /// default, and the `population: 0` path) leaves the hidden
    /// [`LoadProcess`] untouched — the exact pre-fleet behaviour. When
    /// set, the fleet's demand calibrates the load share each probe sees
    /// and damps promotion onto congested layers.
    pub fleet: Option<Arc<FleetLoad>>,
}

impl Default for UeParams {
    fn default() -> Self {
        UeParams {
            load: LoadParams::driving(),
            policy_interval_s: (8.0, 15.0),
            clutter_scale: 1.0,
            load_balance_ho_prob: 0.06,
            shadow_keep_window_m: 20_000.0,
            fleet: None,
        }
    }
}

/// Everything XCAL logs about the link at one instant, plus the capacities
/// the network simulator needs.
#[derive(Debug, Clone, Copy)]
pub struct LinkSnapshot {
    /// Time of the snapshot, seconds.
    pub time_s: f64,
    /// Odometer, meters.
    pub odometer_m: f64,
    /// Vehicle speed, m/s.
    pub speed_mps: f64,
    /// Region kind.
    pub region: RegionKind,
    /// Timezone.
    pub timezone: Timezone,
    /// Serving technology (last known during outage).
    pub tech: Technology,
    /// Serving cell (last known during outage).
    pub cell: CellId,
    /// True when the UE has no usable cell at all.
    pub outage: bool,
    /// Serving-cell RSRP, dBm.
    pub rsrp_dbm: f64,
    /// Downlink wideband SINR, dB.
    pub sinr_dl_db: f64,
    /// Uplink wideband SINR, dB.
    pub sinr_ul_db: f64,
    /// Primary-cell MCS, downlink.
    pub mcs_dl: u8,
    /// Primary-cell MCS, uplink.
    pub mcs_ul: u8,
    /// Residual BLER, [0, 1].
    pub bler: f64,
    /// Active aggregated carriers, downlink.
    pub ca_dl: u8,
    /// Active aggregated carriers, uplink.
    pub ca_ul: u8,
    /// Deliverable downlink capacity, Mbps (0 during handover blanking).
    pub cap_dl_mbps: f64,
    /// Deliverable uplink capacity, Mbps (0 during handover blanking).
    pub cap_ul_mbps: f64,
    /// True while a handover interruption is in progress.
    pub in_handover: bool,
    /// A handover that executed at this tick, if any.
    pub handover: Option<HandoverEvent>,
}

#[derive(Debug, Clone, Copy)]
struct Serving {
    cell: CellId,
    tech: Technology,
}

/// One phone on one operator's network.
#[derive(Debug)]
pub struct UeRadio {
    op: Operator,
    db: Arc<CellDb>,
    params: UeParams,
    policy: UpgradePolicy,
    /// Scenario multiplier on promotion probabilities, `Technology::ALL`
    /// order (all 1.0 outside scenario overrides — an exact no-op).
    promo_scale: [f64; 5],
    shadows: ShadowStore,
    /// Per-layer path-loss model, cached by effective clutter — rebuilt
    /// only when the region (hence clutter) changes, not every tick.
    pl_cache: [Option<(f64, PathLossModel)>; 5],
    /// Per-layer audible-window cursor: slides forward with the (monotone)
    /// odometer instead of binary-searching the layer every tick.
    win: [WindowCursor; 5],
    rng: SmallRng,
    load_dl: LoadProcess,
    load_ul: LoadProcess,
    serving: Option<Serving>,
    a3: A3Tracker,
    ho_until_s: f64,
    next_policy_s: f64,
    next_lb_s: f64,
    last_demand: Option<TrafficDemand>,
}

impl UeRadio {
    /// Create a UE on `op`'s network. `seed` controls every random element
    /// of this UE (shadowing realizations, load, policy dice).
    pub fn new(op: Operator, db: Arc<CellDb>, params: UeParams, seed: u64) -> Self {
        Self::new_tuned(op, db, params, seed, &OperatorTuning::NEUTRAL)
    }

    /// [`UeRadio::new`] with scenario tuning applied to the upgrade policy.
    pub fn new_tuned(
        op: Operator,
        db: Arc<CellDb>,
        params: UeParams,
        seed: u64,
        tuning: &OperatorTuning,
    ) -> Self {
        assert_eq!(db.op(), op, "cell database belongs to a different operator");
        UeRadio {
            op,
            db,
            policy: UpgradePolicy,
            promo_scale: tuning.promotion_scale,
            shadows: ShadowStore::new(seed),
            pl_cache: [None; 5],
            win: [WindowCursor::default(); 5],
            rng: sub_rng(seed, 11),
            load_dl: LoadProcess::new(params.load, seed ^ 0xD1),
            load_ul: LoadProcess::new(params.load, seed ^ 0xB7),
            params,
            serving: None,
            a3: A3Tracker::default(),
            ho_until_s: f64::NEG_INFINITY,
            next_policy_s: f64::NEG_INFINITY,
            next_lb_s: f64::NEG_INFINITY,
            last_demand: None,
        }
    }

    /// The operator this UE is subscribed to.
    pub fn op(&self) -> Operator {
        self.op
    }

    /// Advance to time `t_s` with the vehicle in `drive` state and the
    /// traffic pattern `demand`; returns the link state.
    ///
    /// Must be called with non-decreasing `t_s` and odometer.
    pub fn step(&mut self, t_s: f64, drive: &DriveState, demand: TrafficDemand) -> LinkSnapshot {
        let od = drive.odometer_m;
        let region = drive.region;
        self.shadows.maybe_prune(od, self.params.shadow_keep_window_m);

        // Evaluate all layers.
        let mut cands: [Option<LayerCandidate>; 5] = [None; 5];
        for (i, tech) in Technology::ALL.iter().enumerate() {
            let pl = self.pl_for(*tech, region);
            let window = tech.nominal_range_m() * 1.6;
            let range = self.win[i].range(self.db.layer(*tech).od_m(), od, window);
            cands[i] = evaluate_layer_span(&self.db, *tech, range, od, &pl, &mut self.shadows);
        }

        // Policy evaluation: on schedule, on demand change, or if the
        // serving layer vanished.
        let serving_alive = self
            .serving
            .map(|s| cands[tech_idx(s.tech)].is_some())
            .unwrap_or(false);
        let demand_changed = self.last_demand != Some(demand);
        let mut ho: Option<HandoverEvent> = None;
        if t_s >= self.next_policy_s || demand_changed || !serving_alive {
            let target_tech = self.decide_tech(&cands, demand, drive.speed_mps, t_s);
            self.next_policy_s =
                t_s + self
                    .rng
                    .gen_range(self.params.policy_interval_s.0..self.params.policy_interval_s.1);
            self.last_demand = Some(demand);
            if let Some(tech) = target_tech {
                let best = cands[tech_idx(tech)].expect("decide_tech only picks available layers");
                match self.serving {
                    Some(s) if s.tech == tech && s.cell == best.cell => {}
                    Some(s) if s.tech == tech => {
                        // Same layer, different cell: let A3 handle it below.
                    }
                    prev => {
                        // Vertical (or initial) transition.
                        if let Some(p) = prev {
                            ho = Some(self.execute_ho(t_s, p, (best.cell, tech)));
                        }
                        self.serving = Some(Serving {
                            cell: best.cell,
                            tech,
                        });
                        self.load_dl.redraw();
                        self.load_ul.redraw();
                        self.a3.reset();
                    }
                }
            } else {
                self.serving = None;
            }
        }

        // Network-initiated load balancing: occasionally shed the UE to
        // a comparable neighbor regardless of A3 (checked at the policy
        // cadence so the rate is per-evaluation, not per-tick).
        if ho.is_none() && t_s >= self.next_lb_s {
            self.next_lb_s = t_s + self
                .rng
                .gen_range(self.params.policy_interval_s.0..self.params.policy_interval_s.1);
            if self.rng.gen_bool(self.params.load_balance_ho_prob.clamp(0.0, 1.0)) {
                if let Some(s) = self.serving {
                    if let Some(layer) = cands[tech_idx(s.tech)] {
                        // Shed towards the neighbor, not the best server:
                        // if we hold the best cell, take the runner-up.
                        let target = if layer.cell != s.cell {
                            Some(layer.cell)
                        } else {
                            layer.second_cell
                        };
                        if let Some(target) = target.filter(|&c| c != s.cell) {
                            ho = Some(self.execute_ho(t_s, s, (target, s.tech)));
                            self.serving = Some(Serving {
                                cell: target,
                                tech: s.tech,
                            });
                            self.load_dl.redraw();
                            self.load_ul.redraw();
                            self.a3.reset();
                        }
                    }
                }
            }
        }

        // Horizontal mobility within the serving layer (A3). The serving
        // RSRP consults the layer scan first: when the serving cell is the
        // scan's runner-up its exact RSRP (same path loss, same shadowing
        // sample — the field does not re-draw at an unchanged odometer) is
        // already in hand, and when it is neither best nor second the
        // `rsrp_of` result is remembered for the snapshot below.
        let mut serving_rsrp_known: Option<(CellId, Option<f64>)> = None;
        if ho.is_none() {
            if let Some(s) = self.serving {
                let layer_best = cands[tech_idx(s.tech)];
                if let Some(best) = layer_best {
                    if best.cell != s.cell {
                        let sr = if best.second_cell == Some(s.cell) {
                            best.second_rsrp_dbm
                        } else {
                            self.rsrp_of(s, od, region)
                        };
                        serving_rsrp_known = Some((s.cell, sr));
                        let serving_rsrp = sr.unwrap_or(-130.0);
                        if self
                            .a3
                            .observe(t_s, serving_rsrp, Some((best.cell, best.rsrp_dbm)))
                        {
                            ho = Some(self.execute_ho(t_s, s, (best.cell, s.tech)));
                            self.serving = Some(Serving {
                                cell: best.cell,
                                tech: s.tech,
                            });
                            self.load_dl.redraw();
                            self.load_ul.redraw();
                            self.a3.reset();
                        }
                    } else {
                        self.a3.observe(t_s, best.rsrp_dbm, None);
                    }
                }
            }
        }

        self.snapshot(t_s, drive, demand, &cands, ho, serving_rsrp_known)
    }

    /// Pick the serving technology given layer availability and policy.
    ///
    /// Decisions are *sticky*: an elevation that is still usable is kept
    /// with high probability, so the UE does not churn through vertical
    /// handovers at every policy evaluation (real networks hold an EN-DC
    /// leg until it degrades or the session ends).
    fn decide_tech(
        &mut self,
        cands: &[Option<LayerCandidate>; 5],
        demand: TrafficDemand,
        speed_mps: f64,
        t_s: f64,
    ) -> Option<Technology> {
        if let Some(s) = self.serving {
            if cands[tech_idx(s.tech)].is_some()
                && self.last_demand == Some(demand)
                && self.rng.gen_bool(0.82)
            {
                return Some(s.tech);
            }
        }
        for tech in UpgradePolicy::PREFERENCE {
            if cands[tech_idx(tech)].is_none() {
                continue;
            }
            let mut p = (self.policy.promotion_prob(self.op, tech, demand)
                * self.promo_scale[tech_idx(tech)])
            .clamp(0.0, 1.0);
            // mmWave under light traffic happens essentially only when the
            // vehicle is (nearly) stationary (§5.5, Fig. 8).
            if tech == Technology::Nr5gMmWave
                && matches!(demand, TrafficDemand::Ping | TrafficDemand::Idle)
                && speed_mps > 3.0
            {
                p *= 0.02;
            }
            // A stationary UE with backlogged traffic (the static
            // baselines, a parked passenger) is the easiest elevation
            // decision an operator faces — boost strongly.
            if matches!(demand, TrafficDemand::Backlog(_)) && speed_mps < 3.0 {
                p = 1.0 - (1.0 - p) * 0.25;
            }
            // Traffic-dependent policy: a layer the fleet has loaded up
            // attracts fewer promotions at that hour.
            if let Some(fleet) = &self.params.fleet {
                p *= fleet.promo_factor(tech, t_s);
            }
            if self.rng.gen_bool(p.clamp(0.0, 1.0)) {
                return Some(tech);
            }
        }
        // Anchor: LTE-A if available, else LTE.
        if cands[tech_idx(Technology::LteA)].is_some() {
            Some(Technology::LteA)
        } else if cands[tech_idx(Technology::Lte)].is_some() {
            Some(Technology::Lte)
        } else {
            // Desperate fallback: any remaining layer.
            Technology::ALL
                .iter()
                .copied()
                .find(|&t| cands[tech_idx(t)].is_some())
        }
    }

    fn execute_ho(
        &mut self,
        t_s: f64,
        from: Serving,
        to: (CellId, Technology),
    ) -> HandoverEvent {
        let duration_ms = draw_interruption_ms(self.op, &mut self.rng);
        self.ho_until_s = t_s + duration_ms / 1_000.0;
        HandoverEvent {
            time_s: t_s,
            from: (from.cell, from.tech),
            to,
            duration_ms,
            kind: HandoverKind::classify(from.tech, to.1),
        }
    }

    /// Path-loss model for one layer in the current region, via the
    /// per-layer cache (clutter only changes when the region does).
    fn pl_for(&mut self, tech: Technology, region: RegionKind) -> PathLossModel {
        let clut = layer_clutter(tech, region, self.params.clutter_scale);
        let i = tech_idx(tech);
        match self.pl_cache[i] {
            Some((c, pl)) if c == clut => pl,
            _ => {
                let pl = PathLossModel::new(tech.band(), clut);
                self.pl_cache[i] = Some((clut, pl));
                pl
            }
        }
    }

    /// RSRP of a specific serving cell (it may no longer be the best).
    fn rsrp_of(&mut self, s: Serving, od: f64, region: RegionKind) -> Option<f64> {
        // Only called from `step` at the step's own odometer, so the
        // layer's cursor (already advanced by the scan) does not move.
        let window = s.tech.nominal_range_m() * 1.6;
        let layer = self.db.layer(s.tech);
        let mut range = self.win[tech_idx(s.tech)].range(layer.od_m(), od, window);
        let pos = range.find(|&i| layer.ids()[i] == s.cell)?;
        let along = od - layer.od_m()[pos];
        let dist = (along * along + layer.lat_sq_m2()[pos]).sqrt();
        let eirp = layer.eirp_re_dbm()[pos];
        let pl = self.pl_for(s.tech, region);
        Some(eirp - pl.loss_db(dist) + self.shadows.shadow_at(s.tech, pos, s.cell, od))
    }

    fn snapshot(
        &mut self,
        t_s: f64,
        drive: &DriveState,
        demand: TrafficDemand,
        cands: &[Option<LayerCandidate>; 5],
        ho: Option<HandoverEvent>,
        serving_rsrp_known: Option<(CellId, Option<f64>)>,
    ) -> LinkSnapshot {
        let in_handover = t_s < self.ho_until_s;
        let (tech, cell, rsrp, interferer) = match self.serving {
            Some(s) => {
                let layer = cands[tech_idx(s.tech)];
                let rsrp = match layer {
                    Some(b) if b.cell == s.cell => b.rsrp_dbm,
                    Some(b) if b.second_cell == Some(s.cell) => {
                        b.second_rsrp_dbm.unwrap_or(-125.0)
                    }
                    _ => match serving_rsrp_known {
                        Some((c, r)) if c == s.cell => r.unwrap_or(-125.0),
                        _ => self
                            .rsrp_of(s, drive.odometer_m, drive.region)
                            .unwrap_or(-125.0),
                    },
                };
                let interf = match layer {
                    Some(b) if b.cell == s.cell => b.second_rsrp_dbm,
                    Some(b) => Some(b.rsrp_dbm),
                    None => None,
                };
                (s.tech, s.cell, rsrp, interf)
            }
            None => (Technology::Lte, CellId(u32::MAX), -125.0, None),
        };
        let outage = self.serving.is_none();

        let cfg_dl = link_config_ref(self.op, tech, Direction::Downlink);
        let cfg_ul = link_config_ref(self.op, tech, Direction::Uplink);
        let cand = LayerCandidate {
            cell,
            rsrp_dbm: rsrp,
            second_rsrp_dbm: interferer,
            second_cell: None,
        };
        let noise_dl = link_noise_lin(self.op, tech, Direction::Downlink);
        let noise_ul = link_noise_lin(self.op, tech, Direction::Uplink);
        let sinr_dl = sinr_db_with_noise_lin(&cand, tech, noise_dl, &mut self.rng);
        let sinr_ul = sinr_db_with_noise_lin(&cand, tech, noise_ul, &mut self.rng) - 2.0;

        let bler = (bler_from_sinr(sinr_dl, drive.speed_mps)
            + self.rng.gen_range(-0.02..0.02))
        .clamp(0.0, 0.9);

        let ca_dl = self.pick_cc(cfg_dl, sinr_dl, matches!(demand, TrafficDemand::Backlog(Direction::Downlink)));
        let ca_ul = self.pick_cc(cfg_ul, sinr_ul, matches!(demand, TrafficDemand::Backlog(Direction::Uplink)));

        // Channel aging at speed: CQI staleness and beam mis-tracking cost
        // a slice of the scheduled rate beyond the BLER penalty — part of
        // why the paper's speed–throughput correlation is (weakly)
        // negative (Table 2).
        let speed_factor = 1.0 - 0.12 * (drive.speed_mps / 31.0).clamp(0.0, 1.0);
        let mut share_dl = self.load_dl.share_at(t_s) * speed_factor;
        let mut share_ul =
            self.load_ul.share_at(t_s) * speed_factor * ul_share_penalty(self.op, tech, drive.speed_mps);
        // Fleet calibration: the hidden load process keeps its stochastic
        // fluctuation shape, but its level is re-anchored to the serving
        // cell's live demand. Runs after `share_at` so the RNG stream is
        // identical with and without a fleet.
        if let Some(fleet) = &self.params.fleet {
            if !outage {
                let m = fleet.share_factor(cell, t_s, self.params.load.median_share);
                share_dl = (share_dl * m).clamp(0.005, 1.0);
                share_ul = (share_ul * m).clamp(0.005, 1.0);
            }
        }

        let (cap_dl, mcs_dl) = if outage || in_handover {
            (0.0, 0)
        } else {
            let c = cfg_dl.capacity_model(ca_dl as usize).capacity(sinr_dl, bler, share_dl);
            (c.mbps, c.mcs)
        };
        let (cap_ul, mcs_ul) = if outage || in_handover {
            (0.0, 0)
        } else {
            let c = cfg_ul.capacity_model(ca_ul as usize).capacity(sinr_ul, bler, share_ul);
            (c.mbps, c.mcs)
        };

        LinkSnapshot {
            time_s: t_s,
            odometer_m: drive.odometer_m,
            speed_mps: drive.speed_mps,
            region: drive.region,
            timezone: drive.timezone,
            tech,
            cell,
            outage,
            rsrp_dbm: rsrp,
            sinr_dl_db: sinr_dl,
            sinr_ul_db: sinr_ul,
            mcs_dl,
            mcs_ul,
            bler,
            ca_dl,
            ca_ul,
            cap_dl_mbps: cap_dl,
            cap_ul_mbps: cap_ul,
            in_handover,
            handover: ho,
        }
    }

    /// Number of active component carriers: grows with link quality and
    /// whether this direction is loaded.
    fn pick_cc(&mut self, cfg: &LinkConfig, sinr_db: f64, backlogged: bool) -> u8 {
        let max = cfg.max_cc();
        if max <= 1 {
            return 1;
        }
        let q = ((sinr_db - 2.0) / 20.0).clamp(0.0, 1.0);
        let demand_boost = if backlogged { 1.0 } else { 0.4 };
        // Real CA activation depends on per-site carrier availability and
        // scheduler whim far more than on this UE's SINR; keep the SINR
        // pull mild so the logged CA KPI correlates with throughput only
        // moderately (Table 2: 0.05-0.58).
        let pull = 0.35 * q + 0.65 * self.rng.gen::<f64>();
        let extra = (pull * demand_boost * (max - 1) as f64)
            .round()
            .clamp(0.0, (max - 1) as f64);
        1 + extra as u8
    }
}

/// AT&T schedules mmWave uplink abysmally *on the move*: §5.2 reports 90 %
/// of AT&T mmWave UL driving samples below 0.5 Mbps (beam tracking on the
/// uplink collapses); its static UL baselines are fine.
fn ul_share_penalty(op: Operator, tech: Technology, speed_mps: f64) -> f64 {
    if op == Operator::Att && tech == Technology::Nr5gMmWave && speed_mps > 1.0 {
        0.01
    } else {
        1.0
    }
}

fn tech_idx(t: Technology) -> usize {
    crate::cell::tech_index(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::build_cells;
    
    use wheels_geo::trip::DrivePlan;

    fn setup(op: Operator) -> (DrivePlan, UeRadio) {
        let plan = DrivePlan::cross_country(5);
        let db = Arc::new(build_cells(plan.route(), op, 5, 0));
        let ue = UeRadio::new(op, db, UeParams::default(), 99);
        (plan, ue)
    }

    #[test]
    fn snapshots_are_sane_over_a_drive_hour() {
        let (plan, mut ue) = setup(Operator::TMobile);
        let t0 = plan.days()[0].start_time_s as f64;
        let mut outages = 0;
        for i in 0..36_000 {
            let t = t0 + i as f64 * 0.1;
            let s = ue.step(t, &plan.state_at(t), TrafficDemand::Backlog(Direction::Downlink));
            assert!(s.cap_dl_mbps >= 0.0 && s.cap_dl_mbps < 5_000.0);
            assert!(s.cap_ul_mbps >= 0.0 && s.cap_ul_mbps < 600.0);
            assert!((0.0..=0.9).contains(&s.bler));
            assert!(s.ca_dl >= 1 && s.ca_ul >= 1);
            if s.outage {
                outages += 1;
            }
        }
        // LTE blankets the route; outages must be rare.
        assert!(outages < 1_800, "outage ticks: {outages}");
    }

    #[test]
    fn handovers_happen_at_sane_rate() {
        let (plan, mut ue) = setup(Operator::Verizon);
        // Measure over the second hour of day 1 (suburban/highway mix —
        // the first hour is dense urban LA, where 10+ HOs/mile is expected).
        let t0 = plan.days()[0].start_time_s as f64 + 3_600.0;
        let horizon_s = 3_600.0;
        let mut hos = 0;
        let mut t = t0;
        while t < t0 + horizon_s {
            let s = ue.step(t, &plan.state_at(t), TrafficDemand::Backlog(Direction::Downlink));
            if s.handover.is_some() {
                hos += 1;
            }
            t += 0.1;
        }
        let miles = plan.distance_in_window_m(t0, t0 + horizon_s) / wheels_geo::METERS_PER_MILE;
        let per_mile = hos as f64 / miles;
        // Fig. 11a: median 1-3 HOs/mile, extremes to 20+.
        assert!((0.2..12.0).contains(&per_mile), "{per_mile} HOs/mile");
    }

    #[test]
    fn ping_demand_yields_less_5g_than_backlog() {
        let (plan, _) = setup(Operator::Verizon);
        let db = Arc::new(build_cells(plan.route(), Operator::Verizon, 5, 0));
        let t0 = plan.days()[0].start_time_s as f64;
        let count_5g = |demand: TrafficDemand, seed: u64| {
            let mut ue = UeRadio::new(Operator::Verizon, db.clone(), UeParams::default(), seed);
            let mut n5g = 0usize;
            let mut n = 0usize;
            for i in 0..20_000 {
                let t = t0 + i as f64 * 0.5;
                let s = ue.step(t, &plan.state_at(t), demand);
                if s.tech.is_5g() {
                    n5g += 1;
                }
                n += 1;
            }
            n5g as f64 / n as f64
        };
        let ping = count_5g(TrafficDemand::Ping, 1);
        let backlog = count_5g(TrafficDemand::Backlog(Direction::Downlink), 1);
        assert!(
            backlog > ping + 0.05,
            "backlog {backlog:.3} vs ping {ping:.3}"
        );
    }

    #[test]
    fn handover_blanks_capacity() {
        let (plan, mut ue) = setup(Operator::TMobile);
        let t0 = plan.days()[0].start_time_s as f64;
        let mut saw_blank = false;
        for i in 0..200_000 {
            let t = t0 + i as f64 * 0.05;
            let s = ue.step(t, &plan.state_at(t), TrafficDemand::Backlog(Direction::Downlink));
            if s.in_handover {
                assert_eq!(s.cap_dl_mbps, 0.0);
                saw_blank = true;
                break;
            }
        }
        assert!(saw_blank, "never observed a handover interruption");
    }

    #[test]
    fn shadow_prune_does_not_change_snapshots() {
        // Everything a campaign exports derives from LinkSnapshots, so a
        // byte-identical snapshot stream with pruning on vs. off proves
        // campaign exports are unaffected by the prune (fields are only
        // dropped once their cell is permanently out of range).
        let plan = DrivePlan::cross_country(5);
        let db = Arc::new(build_cells(plan.route(), Operator::TMobile, 5, 0));
        let run = |keep_window_m: f64| {
            let params = UeParams {
                shadow_keep_window_m: keep_window_m,
                ..UeParams::default()
            };
            let mut ue = UeRadio::new(Operator::TMobile, db.clone(), params, 77);
            let t0 = plan.days()[0].start_time_s as f64;
            let mut stream = Vec::new();
            for i in 0..40_000 {
                let t = t0 + i as f64 * 0.5;
                let s = ue.step(t, &plan.state_at(t), TrafficDemand::Backlog(Direction::Downlink));
                stream.push((
                    s.cell,
                    s.tech,
                    s.rsrp_dbm.to_bits(),
                    s.sinr_dl_db.to_bits(),
                    s.cap_dl_mbps.to_bits(),
                    s.cap_ul_mbps.to_bits(),
                    s.handover.map(|h| h.duration_ms.to_bits()),
                ));
            }
            (stream, ue.shadows.len())
        };
        let (pruned, live) = run(20_000.0);
        let (unpruned, all) = run(f64::INFINITY);
        assert_eq!(pruned, unpruned);
        assert!(live < all, "prune dropped nothing over a 5+ hour drive");
    }

    #[test]
    fn deterministic_given_seeds() {
        let plan = DrivePlan::cross_country(5);
        let db = Arc::new(build_cells(plan.route(), Operator::Att, 5, 0));
        let run = || {
            let mut ue = UeRadio::new(Operator::Att, db.clone(), UeParams::default(), 7);
            let t0 = plan.days()[0].start_time_s as f64;
            let mut acc = 0.0;
            for i in 0..5_000 {
                let t = t0 + i as f64 * 0.5;
                let s = ue.step(t, &plan.state_at(t), TrafficDemand::Backlog(Direction::Uplink));
                acc += s.cap_ul_mbps;
            }
            acc
        };
        assert_eq!(run(), run());
    }
}
