//! A binary `.drm` codec for XCAL logs.
//!
//! The real XCAL Solo writes proprietary binary `.drm` files that only the
//! licensed XCAP-M software can parse — §B calls the resulting manual
//! post-processing "a major challenge". We implement the equivalent
//! substrate: a compact little-endian binary format for [`XcalLog`] plus a
//! defensive parser, so the pipeline (capture → binary file → parse →
//! consolidate) exists end to end.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "DRM1"                      4 bytes
//! op     operator code byte          1
//! name_len u16 | file name           2 + n (UTF-8)
//! edt_len  u16 | content start EDT   2 + n (UTF-8)
//! start_plan_s f64                   8
//! n_samples u32                      4
//! samples: n × 44-byte record
//! n_messages u32                     4
//! messages: n × 32-byte record
//! crc32  (IEEE, over everything above)  4
//! ```

use wheels_radio::band::Technology;
use wheels_ran::cell::CellId;
use wheels_ran::operator::Operator;

use crate::kpi::KpiSample;
use crate::logger::XcalLog;
use crate::signaling::SignalingMessage;

/// File magic.
pub const MAGIC: &[u8; 4] = b"DRM1";

/// Errors the parser can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrmError {
    /// File shorter than a field required.
    Truncated,
    /// Magic bytes wrong.
    BadMagic,
    /// Unknown operator code.
    BadOperator(u8),
    /// Unknown technology code.
    BadTechnology(u8),
    /// String field is not UTF-8.
    BadString,
    /// Checksum mismatch.
    BadChecksum,
    /// Unknown message tag.
    BadMessageTag(u8),
}

impl std::fmt::Display for DrmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DrmError::Truncated => write!(f, "truncated drm file"),
            DrmError::BadMagic => write!(f, "bad magic"),
            DrmError::BadOperator(b) => write!(f, "unknown operator code {b}"),
            DrmError::BadTechnology(b) => write!(f, "unknown technology code {b}"),
            DrmError::BadString => write!(f, "invalid utf-8 in string field"),
            DrmError::BadChecksum => write!(f, "checksum mismatch"),
            DrmError::BadMessageTag(b) => write!(f, "unknown message tag {b}"),
        }
    }
}

impl std::error::Error for DrmError {}

fn op_code(op: Operator) -> u8 {
    match op {
        Operator::Verizon => 0,
        Operator::TMobile => 1,
        Operator::Att => 2,
    }
}

fn op_from(b: u8) -> Result<Operator, DrmError> {
    match b {
        0 => Ok(Operator::Verizon),
        1 => Ok(Operator::TMobile),
        2 => Ok(Operator::Att),
        other => Err(DrmError::BadOperator(other)),
    }
}

fn tech_code(t: Technology) -> u8 {
    Technology::ALL
        .iter()
        .position(|&x| x == t)
        // lint:allow(D7): Technology::ALL enumerates every variant, so the position always exists
        .expect("known technology") as u8
}

fn tech_from(b: u8) -> Result<Technology, DrmError> {
    Technology::ALL
        .get(b as usize)
        .copied()
        .ok_or(DrmError::BadTechnology(b))
}

/// CRC-32 (IEEE 802.3, reflected), table-free bitwise variant — the file
/// trailer checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str16(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.u16(bytes.len() as u16);
        self.0.extend_from_slice(bytes);
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DrmError> {
        // Total: `checked_add` covers the `pos + n` overflow the old
        // comparison could hit, and `get` covers the range itself.
        let end = self.pos.checked_add(n).ok_or(DrmError::Truncated)?;
        let s = self.data.get(self.pos..end).ok_or(DrmError::Truncated)?;
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DrmError> {
        self.take(1)?.first().copied().ok_or(DrmError::Truncated)
    }
    fn u16(&mut self) -> Result<u16, DrmError> {
        let b: [u8; 2] = self.take(2)?.try_into().map_err(|_| DrmError::Truncated)?;
        Ok(u16::from_le_bytes(b))
    }
    fn u32(&mut self) -> Result<u32, DrmError> {
        let b: [u8; 4] = self.take(4)?.try_into().map_err(|_| DrmError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }
    fn f32(&mut self) -> Result<f32, DrmError> {
        let b: [u8; 4] = self.take(4)?.try_into().map_err(|_| DrmError::Truncated)?;
        Ok(f32::from_le_bytes(b))
    }
    fn f64(&mut self) -> Result<f64, DrmError> {
        let b: [u8; 8] = self.take(8)?.try_into().map_err(|_| DrmError::Truncated)?;
        Ok(f64::from_le_bytes(b))
    }
    fn str16(&mut self) -> Result<String, DrmError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DrmError::BadString)
    }
}

/// Encode a log into `.drm` bytes.
pub fn encode(log: &XcalLog) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(64 + log.samples.len() * 44));
    w.0.extend_from_slice(MAGIC);
    w.u8(op_code(log.op));
    w.str16(&log.file_name);
    w.str16(&log.content_start_edt);
    w.f64(log.start_plan_s);
    w.u32(log.samples.len() as u32);
    for k in &log.samples {
        w.f64(k.time_s);
        w.f32(k.tput_mbps.unwrap_or(f32::NAN));
        w.u8(tech_code(k.tech));
        w.u32(k.cell.0);
        w.f32(k.rsrp_dbm);
        w.f32(k.sinr_db);
        w.u8(k.mcs);
        w.f32(k.bler);
        w.u8(k.ca);
        w.u8(k.handovers_in_window);
        w.f32(k.speed_mps);
        w.f64(k.odometer_m);
        w.u8(region_code(k.region));
        w.u8(tz_code(k.timezone));
        w.u8(u8::from(k.in_handover));
    }
    w.u32(log.messages.len() as u32);
    for m in &log.messages {
        encode_message(&mut w, m);
    }
    let crc = crc32(&w.0);
    w.u32(crc);
    w.0
}

fn region_code(r: wheels_geo::region::RegionKind) -> u8 {
    wheels_geo::region::RegionKind::ALL
        .iter()
        .position(|&x| x == r)
        // lint:allow(D7): RegionKind::ALL enumerates every variant, so the position always exists
        .expect("known region") as u8
}

fn tz_code(t: wheels_geo::timezone::Timezone) -> u8 {
    wheels_geo::timezone::Timezone::ALL
        .iter()
        .position(|&x| x == t)
        // lint:allow(D7): Timezone::ALL enumerates every variant, so the position always exists
        .expect("known timezone") as u8
}

fn encode_message(w: &mut Writer, m: &SignalingMessage) {
    match m {
        SignalingMessage::HandoverCommand {
            time_s,
            from_cell,
            from_tech,
            to_cell,
            to_tech,
            kind: _,
        } => {
            w.u8(0);
            w.f64(*time_s);
            w.u32(from_cell.0);
            w.u8(tech_code(*from_tech));
            w.u32(to_cell.0);
            w.u8(tech_code(*to_tech));
            w.f64(0.0);
        }
        SignalingMessage::HandoverComplete {
            time_s,
            cell,
            interruption_ms,
        } => {
            w.u8(1);
            w.f64(*time_s);
            w.u32(cell.0);
            w.u8(0);
            w.u32(0);
            w.u8(0);
            w.f64(*interruption_ms);
        }
        SignalingMessage::ServingCell { time_s, cell, tech } => {
            w.u8(2);
            w.f64(*time_s);
            w.u32(cell.0);
            w.u8(tech_code(*tech));
            w.u32(0);
            w.u8(0);
            w.f64(0.0);
        }
    }
}

/// Decode `.drm` bytes back into a log.
pub fn decode(data: &[u8]) -> Result<XcalLog, DrmError> {
    if data.len() < 8 {
        return Err(DrmError::Truncated);
    }
    let (body, trailer) = data.split_at(data.len() - 4);
    let trailer: [u8; 4] = trailer.try_into().map_err(|_| DrmError::Truncated)?;
    let stored = u32::from_le_bytes(trailer);
    if crc32(body) != stored {
        return Err(DrmError::BadChecksum);
    }
    let mut r = Reader { data: body, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(DrmError::BadMagic);
    }
    let op = op_from(r.u8()?)?;
    let file_name = r.str16()?;
    let content_start_edt = r.str16()?;
    let start_plan_s = r.f64()?;
    let n_samples = r.u32()? as usize;
    let mut samples = Vec::with_capacity(n_samples.min(1 << 20));
    for _ in 0..n_samples {
        let time_s = r.f64()?;
        let tput = r.f32()?;
        let tech = tech_from(r.u8()?)?;
        let cell = CellId(r.u32()?);
        let rsrp_dbm = r.f32()?;
        let sinr_db = r.f32()?;
        let mcs = r.u8()?;
        let bler = r.f32()?;
        let ca = r.u8()?;
        let hos = r.u8()?;
        let speed_mps = r.f32()?;
        let odometer_m = r.f64()?;
        let region = *wheels_geo::region::RegionKind::ALL
            .get(r.u8()? as usize)
            .ok_or(DrmError::Truncated)?;
        let timezone = *wheels_geo::timezone::Timezone::ALL
            .get(r.u8()? as usize)
            .ok_or(DrmError::Truncated)?;
        let in_handover = r.u8()? != 0;
        samples.push(KpiSample {
            time_s,
            tput_mbps: if tput.is_nan() { None } else { Some(tput) },
            tech,
            cell,
            rsrp_dbm,
            sinr_db,
            mcs,
            bler,
            ca,
            handovers_in_window: hos,
            speed_mps,
            odometer_m,
            region,
            timezone,
            in_handover,
        });
    }
    let n_messages = r.u32()? as usize;
    let mut messages = Vec::with_capacity(n_messages.min(1 << 20));
    for _ in 0..n_messages {
        messages.push(decode_message(&mut r)?);
    }
    Ok(XcalLog {
        file_name,
        content_start_edt,
        op,
        start_plan_s,
        samples,
        messages,
    })
}

fn decode_message(r: &mut Reader<'_>) -> Result<SignalingMessage, DrmError> {
    let tag = r.u8()?;
    let time_s = r.f64()?;
    let cell_a = CellId(r.u32()?);
    let tech_a = r.u8()?;
    let cell_b = CellId(r.u32()?);
    let tech_b = r.u8()?;
    let f = r.f64()?;
    match tag {
        0 => {
            let from_tech = tech_from(tech_a)?;
            let to_tech = tech_from(tech_b)?;
            Ok(SignalingMessage::HandoverCommand {
                time_s,
                from_cell: cell_a,
                from_tech,
                to_cell: cell_b,
                to_tech,
                kind: wheels_ran::handover::HandoverKind::classify(from_tech, to_tech),
            })
        }
        1 => Ok(SignalingMessage::HandoverComplete {
            time_s,
            cell: cell_a,
            interruption_ms: f,
        }),
        2 => Ok(SignalingMessage::ServingCell {
            time_s,
            cell: cell_a,
            tech: tech_from(tech_a)?,
        }),
        other => Err(DrmError::BadMessageTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logger::XcalLogger;
    use wheels_geo::region::RegionKind;
    use wheels_geo::timezone::Timezone;
    use wheels_ran::handover::{HandoverEvent, HandoverKind};

    fn sample(t: f64, tput: Option<f32>) -> KpiSample {
        KpiSample {
            time_s: t,
            tput_mbps: tput,
            tech: Technology::Nr5gMid,
            cell: CellId(777),
            rsrp_dbm: -93.5,
            sinr_db: 11.25,
            mcs: 17,
            bler: 0.085,
            ca: 2,
            handovers_in_window: 1,
            speed_mps: 28.5,
            odometer_m: 123_456.75,
            region: RegionKind::Suburban,
            timezone: Timezone::Central,
            in_handover: false,
        }
    }

    fn make_log() -> XcalLog {
        let mut l = XcalLogger::start(Operator::TMobile, "DL", 12_345.0);
        l.log_sample(sample(12_345.5, Some(42.5)));
        l.log_sample(sample(12_346.0, None));
        l.log_handover(&HandoverEvent {
            time_s: 12_346.2,
            from: (CellId(777), Technology::Nr5gMid),
            to: (CellId(778), Technology::LteA),
            duration_ms: 61.5,
            kind: HandoverKind::Down5gTo4g,
        });
        l.finish(Timezone::Central)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let log = make_log();
        let bytes = encode(&log);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.op, log.op);
        assert_eq!(back.file_name, log.file_name);
        assert_eq!(back.content_start_edt, log.content_start_edt);
        assert_eq!(back.start_plan_s, log.start_plan_s);
        assert_eq!(back.samples.len(), 2);
        assert_eq!(back.samples[0].tput_mbps, Some(42.5));
        assert_eq!(back.samples[1].tput_mbps, None);
        assert_eq!(back.samples[0].cell, CellId(777));
        assert_eq!(back.samples[0].odometer_m, 123_456.75);
        assert_eq!(back.messages.len(), 2);
        assert_eq!(back.messages[0].time_s(), 12_346.2);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&make_log());
        bytes[0] = b'X';
        // Fix the checksum so only the magic is wrong.
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode(&bytes).unwrap_err(), DrmError::BadMagic);
    }

    #[test]
    fn corruption_caught_by_checksum() {
        let mut bytes = encode(&make_log());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert_eq!(decode(&bytes).unwrap_err(), DrmError::BadChecksum);
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode(&make_log());
        assert_eq!(decode(&bytes[..6]).unwrap_err(), DrmError::Truncated);
        // Truncation inside the body also breaks the checksum.
        assert!(decode(&bytes[..bytes.len() - 10]).is_err());
    }

    #[test]
    fn empty_log_roundtrips() {
        let log = XcalLogger::start(Operator::Att, "RTT", 0.0).finish(Timezone::Pacific);
        let back = decode(&encode(&log)).unwrap();
        assert!(back.samples.is_empty());
        assert!(back.messages.is_empty());
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926 (IEEE).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
