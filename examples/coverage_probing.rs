//! The Fig. 1 methodology lesson, reproduced directly: passive ping-based
//! coverage logging vs active backlogged probing.
//!
//! Drives one simulated hour per operator twice — once with the
//! handover-logger's 38-byte pings, once with a saturating downlink — and
//! prints the technology split each probing style observes.
//!
//! ```text
//! cargo run --release --example coverage_probing
//! ```

use std::sync::Arc;

use wheels::geo::trip::DrivePlan;
use wheels::radio::band::Technology;
use wheels::ran::deployment::build_all;
use wheels::ran::policy::TrafficDemand;
use wheels::ran::ue::{UeParams, UeRadio};
use wheels::ran::{Direction, Operator};

fn main() {
    println!("== passive vs active coverage probing (Fig. 1) ==\n");
    let plan = DrivePlan::cross_country(7);
    let dbs = build_all(plan.route(), 7);
    // A representative afternoon: day 3, two hours into driving
    // (Wyoming/Utah highway into suburbs).
    let t0 = plan.days()[2].start_time_s as f64 + 2.0 * 3_600.0;
    let horizon = 3_600.0;

    for (i, op) in Operator::ALL.iter().enumerate() {
        println!("{}:", op.label());
        for (label, demand) in [
            ("passive ping   ", TrafficDemand::Ping),
            ("DL backlog     ", TrafficDemand::Backlog(Direction::Downlink)),
            ("UL backlog     ", TrafficDemand::Backlog(Direction::Uplink)),
        ] {
            let mut ue = UeRadio::new(
                *op,
                Arc::new(dbs[i].clone()),
                UeParams::default(),
                1234 + i as u64,
            );
            let mut meters = [0.0f64; 5];
            let mut t = t0;
            while t < t0 + horizon {
                let state = plan.state_at(t);
                let snap = ue.step(t, &state, demand);
                let idx = Technology::ALL.iter().position(|&x| x == snap.tech).unwrap();
                meters[idx] += state.speed_mps; // 1 s per step
                t += 1.0;
            }
            let total: f64 = meters.iter().sum::<f64>().max(1e-9);
            print!("  {label}");
            for (j, tech) in Technology::ALL.iter().enumerate() {
                if meters[j] / total > 0.005 {
                    print!(" {}={:.0}%", tech.label(), meters[j] / total * 100.0);
                }
            }
            println!();
        }
        println!();
    }
    println!("Lesson (§4.1): passive logging under light traffic understates 5G");
    println!("coverage because operators only elevate UEs under real demand.");
}
