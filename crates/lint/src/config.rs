//! Lint configuration: the D7 scope, the D8 hot-path registry
//! (`lint-hotpaths.toml`), and the D9 RNG-domain registry
//! (`lint-rng-domains.toml`).
//!
//! The lint crate is dependency-free by design (it must build and run in
//! seconds, before the workspace), so this module includes a tiny parser
//! for the TOML subset the two config files use: comments, `[section]`
//! headers, `key = "string"`, `key = integer`, and `key = [ ... ]`
//! string lists that may span lines. Anything outside that subset is a
//! hard error — a malformed config failing loudly beats a rule silently
//! not running.

use std::fmt;
use std::path::Path;

/// A parsed configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlVal {
    Str(String),
    Int(i64),
    List(Vec<String>),
}

/// Errors from config parsing/loading.
#[derive(Debug)]
pub struct ConfigError {
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

/// Parse the TOML subset into `(section.key, value)` pairs. Keys outside
/// a section are returned bare (`key`); inside `[arity]` they come back
/// as `arity.key`.
pub fn parse_toml(file: &str, text: &str) -> Result<Vec<(String, TomlVal)>, ConfigError> {
    let err = |line: usize, message: String| ConfigError {
        file: file.to_string(),
        line,
        message,
    };
    let mut out = Vec::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((ln0, raw)) = lines.next() {
        let line_no = ln0 + 1;
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| err(line_no, format!("unterminated section header: {raw}")))?;
            section = name.trim().to_string();
            continue;
        }
        let (key, val) = line
            .split_once('=')
            .ok_or_else(|| err(line_no, format!("expected `key = value`: {raw}")))?;
        let key = key.trim();
        if key.is_empty() {
            return Err(err(line_no, "empty key".to_string()));
        }
        let full_key = if section.is_empty() {
            key.to_string()
        } else {
            format!("{section}.{key}")
        };
        let mut val = val.trim().to_string();
        let parsed = if val.starts_with('[') {
            // A list; may continue over following lines until `]`.
            while !val.contains(']') {
                match lines.next() {
                    Some((_, cont)) => {
                        val.push(' ');
                        val.push_str(strip_toml_comment(cont).trim());
                    }
                    None => return Err(err(line_no, format!("unterminated list for `{key}`"))),
                }
            }
            let inner = val
                .trim()
                .trim_start_matches('[')
                .rsplit_once(']')
                .map(|(a, _)| a)
                .unwrap_or("");
            let mut items = Vec::new();
            for piece in inner.split(',') {
                let piece = piece.trim();
                if piece.is_empty() {
                    continue;
                }
                items.push(unquote(piece).ok_or_else(|| {
                    err(line_no, format!("list items must be quoted strings: {piece}"))
                })?);
            }
            TomlVal::List(items)
        } else if let Some(s) = unquote(&val) {
            TomlVal::Str(s)
        } else if let Ok(n) = val.parse::<i64>() {
            TomlVal::Int(n)
        } else {
            return Err(err(
                line_no,
                format!("expected string, integer, or list for `{key}`, got: {val}"),
            ));
        };
        out.push((full_key, parsed));
    }
    Ok(out)
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(s: &str) -> Option<String> {
    let s = s.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        Some(s[1..s.len() - 1].to_string())
    } else {
        None
    }
}

/// The resolved lint configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path fragments (normalized with `/`) under which D7 applies.
    pub d7_scope: Vec<String>,
    /// Hot-path function names for D8; entries are `Type::name` or a
    /// bare `name` (matches any function with that name).
    pub hotpaths: Vec<String>,
    /// Call paths forbidden inside hot paths (`Vec::new`, `vec!`, ...).
    /// `name!` entries match macro invocations.
    pub hotpath_forbid: Vec<String>,
    /// Path suffix of the one module allowed to declare `DOMAIN_*`
    /// constants for D9.
    pub rng_module: String,
    /// Identifier prefix that marks an RNG domain constant.
    pub rng_domain_prefix: String,
    /// Pinned key arity per domain (`derive_seed(seed, DOMAIN, &[..])`
    /// literal slice length). Domains absent here have variable arity.
    pub rng_arity: Vec<(String, usize)>,
}

impl LintConfig {
    /// The built-in defaults, matching the checked-in workspace configs.
    /// Used when no config files are present (e.g. `lint_source` unit
    /// runs) so single-file behavior matches the workspace sweep.
    pub fn builtin() -> Self {
        LintConfig {
            d7_scope: vec![
                "crates/campaign/src".to_string(),
                "crates/bench/src".to_string(),
                "crates/apps/src".to_string(),
                "crates/xcal/src".to_string(),
                // Only the d7_* fixture pair opts in, so the other bad/
                // fixtures (which use `.unwrap()` freely to stay focused
                // on their own rule) don't pick up stray D7 findings.
                "fixtures/bad/d7".to_string(),
                "fixtures/allowed/d7".to_string(),
            ],
            hotpaths: vec![
                "ShadowBank::advance_span".to_string(),
                "ShadowingField::fill_span".to_string(),
                "ShadowingField::at_memo".to_string(),
                "UeRadio::step".to_string(),
                "ShadowStore::advance_span".to_string(),
                "evaluate_layer_span".to_string(),
                "FleetLoad::fold_span".to_string(),
                "Cubic::on_ack".to_string(),
                "Bbr::on_ack".to_string(),
                "records_fragment".to_string(),
                "write_record_rows".to_string(),
            ],
            hotpath_forbid: vec![
                "Vec::new".to_string(),
                "vec!".to_string(),
                "format!".to_string(),
                "to_string".to_string(),
                "to_owned".to_string(),
                "collect".to_string(),
                "Box::new".to_string(),
                "String::new".to_string(),
                "clone".to_string(),
            ],
            rng_module: "crates/netsim/src/rng.rs".to_string(),
            rng_domain_prefix: "DOMAIN_".to_string(),
            rng_arity: vec![
                ("DOMAIN_PHONE".to_string(), 2),
                ("DOMAIN_CYCLE".to_string(), 1),
                ("DOMAIN_STATIC".to_string(), 3),
                ("DOMAIN_PASSIVE".to_string(), 1),
                ("DOMAIN_FLEET".to_string(), 1),
                // DOMAIN_FAULT is deliberately unpinned: fault injection
                // keys a variable-length word list.
            ],
        }
    }

    /// Load the configuration rooted at `dir`, layering
    /// `lint-hotpaths.toml` and `lint-rng-domains.toml` over the
    /// builtin defaults when present.
    pub fn load(dir: &Path) -> Result<Self, ConfigError> {
        let mut cfg = LintConfig::builtin();
        let hot = dir.join("lint-hotpaths.toml");
        if let Ok(text) = std::fs::read_to_string(&hot) {
            cfg.apply_hotpaths(&hot.display().to_string(), &text)?;
        }
        let rng = dir.join("lint-rng-domains.toml");
        if let Ok(text) = std::fs::read_to_string(&rng) {
            cfg.apply_rng(&rng.display().to_string(), &text)?;
        }
        Ok(cfg)
    }

    fn apply_hotpaths(&mut self, file: &str, text: &str) -> Result<(), ConfigError> {
        for (key, val) in parse_toml(file, text)? {
            match (key.as_str(), val) {
                ("functions", TomlVal::List(v)) => self.hotpaths = v,
                ("forbid", TomlVal::List(v)) => self.hotpath_forbid = v,
                ("d7_scope", TomlVal::List(v)) => self.d7_scope = v,
                (k, _) => {
                    return Err(ConfigError {
                        file: file.to_string(),
                        line: 0,
                        message: format!("unknown key `{k}` (expected functions/forbid/d7_scope)"),
                    })
                }
            }
        }
        Ok(())
    }

    fn apply_rng(&mut self, file: &str, text: &str) -> Result<(), ConfigError> {
        for (key, val) in parse_toml(file, text)? {
            match (key.as_str(), val) {
                ("declaring_module", TomlVal::Str(s)) => self.rng_module = s,
                ("domain_prefix", TomlVal::Str(s)) => self.rng_domain_prefix = s,
                (k, TomlVal::Int(n)) if k.starts_with("arity.") => {
                    let name = k["arity.".len()..].to_string();
                    if n < 0 {
                        return Err(ConfigError {
                            file: file.to_string(),
                            line: 0,
                            message: format!("negative arity for `{name}`"),
                        });
                    }
                    self.rng_arity.push((name, n as usize));
                }
                (k, _) => {
                    return Err(ConfigError {
                        file: file.to_string(),
                        line: 0,
                        message: format!(
                            "unknown key `{k}` (expected declaring_module/domain_prefix/[arity])"
                        ),
                    })
                }
            }
        }
        Ok(())
    }

    /// Pinned arity for `domain`, if any.
    pub fn pinned_arity(&self, domain: &str) -> Option<usize> {
        self.rng_arity
            .iter()
            .find(|(d, _)| d == domain)
            .map(|(_, n)| *n)
    }

    /// Does D7 apply to this (normalized, `/`-separated) path?
    pub fn d7_applies(&self, norm_path: &str) -> bool {
        self.d7_scope.iter().any(|frag| norm_path.contains(frag.as_str()))
    }

    /// Is `qual` (e.g. `ShadowBank::advance_span`) a registered hot
    /// path? Bare registry entries match any function with that name.
    pub fn is_hotpath(&self, qual: &str, bare: &str) -> bool {
        self.hotpaths.iter().any(|h| h == qual || h == bare)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_strings_ints_and_lists() {
        let text = "a = \"x\" # trailing\nb = 3\nc = [\"p\", \"q\"]\n";
        let kv = parse_toml("t", text).unwrap();
        assert_eq!(kv[0], ("a".to_string(), TomlVal::Str("x".to_string())));
        assert_eq!(kv[1], ("b".to_string(), TomlVal::Int(3)));
        assert_eq!(
            kv[2],
            (
                "c".to_string(),
                TomlVal::List(vec!["p".to_string(), "q".to_string()])
            )
        );
    }

    #[test]
    fn multiline_lists_and_sections() {
        let text = "functions = [\n  \"A::b\", # comment\n  \"c\",\n]\n[arity]\nDOMAIN_X = 2\n";
        let kv = parse_toml("t", text).unwrap();
        assert_eq!(
            kv[0].1,
            TomlVal::List(vec!["A::b".to_string(), "c".to_string()])
        );
        assert_eq!(kv[1], ("arity.DOMAIN_X".to_string(), TomlVal::Int(2)));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let kv = parse_toml("t", "a = \"x#y\"\n").unwrap();
        assert_eq!(kv[0].1, TomlVal::Str("x#y".to_string()));
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let e = parse_toml("t", "a = \"x\"\nbogus line\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("t:2"));
    }

    #[test]
    fn unterminated_list_errors() {
        assert!(parse_toml("t", "a = [\n\"x\",\n").is_err());
    }

    #[test]
    fn config_layering_applies_overrides() {
        let mut cfg = LintConfig::builtin();
        cfg.apply_hotpaths("h", "functions = [\"T::hot\"]\n").unwrap();
        cfg.apply_rng(
            "r",
            "declaring_module = \"x/rng.rs\"\n[arity]\nDOMAIN_A = 2\n",
        )
        .unwrap();
        assert!(cfg.is_hotpath("T::hot", "hot"));
        assert!(!cfg.is_hotpath("T::cold", "cold"));
        assert_eq!(cfg.rng_module, "x/rng.rs");
        assert_eq!(cfg.pinned_arity("DOMAIN_A"), Some(2));
        assert_eq!(cfg.pinned_arity("DOMAIN_B"), None);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let mut cfg = LintConfig::builtin();
        assert!(cfg.apply_hotpaths("h", "nope = 1\n").is_err());
    }

    #[test]
    fn d7_scope_matches_path_fragments() {
        let cfg = LintConfig::builtin();
        assert!(cfg.d7_applies("crates/campaign/src/runner.rs"));
        assert!(cfg.d7_applies("/abs/repo/crates/xcal/src/export.rs"));
        assert!(!cfg.d7_applies("crates/radio/src/shadowing.rs"));
    }
}
