//! Binning utilities used across the figure modules.
//!
//! The paper buckets samples constantly — speed bins, timezone bins,
//! technology bins, 500 ms windows, hs5G-fraction bins. These helpers keep
//! that logic in one tested place.

use std::collections::BTreeMap;

/// Group values by a key function, preserving key order.
pub fn group_by<T, K: Ord, V>(
    items: impl IntoIterator<Item = T>,
    mut key: impl FnMut(&T) -> K,
    mut value: impl FnMut(T) -> V,
) -> BTreeMap<K, Vec<V>> {
    let mut out: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for item in items {
        let k = key(&item);
        out.entry(k).or_default().push(value(item));
    }
    out
}

/// Fixed-width histogram over `[lo, hi)` with `n` bins; values outside the
/// range clamp into the first/last bin.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Create an empty histogram.
    ///
    /// # Panics
    /// Panics if `n == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; n],
        }
    }

    /// Index of the bin a value falls into (clamped).
    pub fn bin_of(&self, v: f64) -> usize {
        let n = self.counts.len();
        let t = (v - self.lo) / (self.hi - self.lo);
        ((t * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize
    }

    /// Add one observation.
    pub fn add(&mut self, v: f64) {
        let b = self.bin_of(v);
        self.counts[b] += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// (bin center, fraction) pairs.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let total = self.total().max(1) as f64;
        let n = self.counts.len() as f64;
        let w = (self.hi - self.lo) / n;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c as f64 / total))
            .collect()
    }
}

/// Split `[0, 1]`-valued observations into `n` equal fraction-bins and
/// return each bin's mean of the paired metric — the aggregation behind
/// Fig. 10-style "metric vs fraction" panels.
pub fn fraction_bin_means(points: &[(f64, f64)], n: usize) -> Vec<(f64, Option<f64>)> {
    assert!(n > 0);
    let mut sums = vec![0.0f64; n];
    let mut counts = vec![0u64; n];
    for &(frac, v) in points {
        let b = ((frac * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize;
        sums[b] += v;
        counts[b] += 1;
    }
    (0..n)
        .map(|i| {
            let center = (i as f64 + 0.5) / n as f64;
            let mean = (counts[i] > 0).then(|| sums[i] / counts[i] as f64);
            (center, mean)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_by_preserves_all_items() {
        let grouped = group_by(0..10, |i| i % 3, |i| i);
        assert_eq!(grouped.len(), 3);
        let total: usize = grouped.values().map(Vec::len).sum();
        assert_eq!(total, 10);
        assert_eq!(grouped[&0], vec![0, 3, 6, 9]);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 42.0] {
            h.add(v);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.counts()[0], 3); // -1, 0, 1.9
        assert_eq!(h.counts()[1], 1); // 2.0
        assert_eq!(h.counts()[4], 3); // 9.99, 10, 42 (clamped)
    }

    #[test]
    fn histogram_normalized_sums_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for i in 0..100 {
            h.add(i as f64 / 100.0);
        }
        let s: f64 = h.normalized().iter().map(|(_, f)| f).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_bins_average_correctly() {
        let pts = vec![(0.1, 10.0), (0.15, 20.0), (0.9, 100.0)];
        let bins = fraction_bin_means(&pts, 2);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].1, Some(15.0));
        assert_eq!(bins[1].1, Some(100.0));
    }

    #[test]
    fn empty_fraction_bin_is_none() {
        let bins = fraction_bin_means(&[(0.9, 5.0)], 4);
        assert_eq!(bins[0].1, None);
        assert_eq!(bins[3].1, Some(5.0));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
