//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`), and a
//! poisoned std lock is recovered rather than propagated — parking_lot has
//! no poisoning, and the campaign executor treats a panicked worker as a
//! test failure anyway, not as a reason to wedge every other thread.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion primitive mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Borrow the value without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Borrow the value without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().expect("uncontended"), 1);
    }

    #[test]
    fn rwlock_roundtrips() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
        assert_eq!(l.into_inner(), "ab");
    }
}
