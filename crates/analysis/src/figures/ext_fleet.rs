//! Extension: probe vs population — what a three-phone drive-by panel
//! sees of a live subscriber fleet.
//!
//! When the campaign runs with `--population N`, the hidden load each
//! probe experiences is calibrated by the aggregate demand of `N` seeded
//! subscribers instead of a free-running stochastic process. The fleet's
//! own ground truth — per-(cell, technology, hour) utilization folded
//! into mergeable sketches during the campaign — is available alongside
//! the probe dataset, so for the first time the reproduction can ask the
//! question the paper could not: *how well does the drive-by panel's
//! picture track the network's actual load?* This section compares the
//! probes' operator ranking and 5G time share against the fleet's
//! subscriber-hour shares, and reports the ground-truth load quantiles
//! the probes were sampling from.
//!
//! This is *not* a paper figure — it needs the fleet ground truth, which
//! exists only inside the simulation.

use wheels_campaign::FleetSummary;
use wheels_radio::band::Technology;
use wheels_ran::operator::Operator;
use wheels_ran::Direction;

use crate::index::AnalysisIndex;
use crate::render::pct;

/// One operator's probe-view vs fleet-ground-truth comparison.
#[derive(Debug, Clone)]
pub struct OpFleetRow {
    /// The operator.
    pub op: Operator,
    /// Probe panel: median driving DL throughput, Mbps.
    pub probe_dl_median_mbps: f64,
    /// Probe panel: fraction of driving samples on a 5G technology.
    pub probe_5g_share: f64,
    /// Fleet ground truth: fraction of subscriber-hours on 5G layers.
    pub fleet_5g_share: f64,
    /// Fleet ground truth: total subscriber-hours this operator carried.
    pub fleet_sub_hours: f64,
    /// Fleet ground truth cell-load quantiles (p10/p50/p90 utilization).
    pub load_quantiles: [f64; 3],
}

/// The probe-vs-population extension section.
#[derive(Debug, Clone)]
pub struct ProbeVsFleet {
    /// Panel-total subscriber population (0 = campaign ran fleetless).
    pub population: u64,
    /// Per-operator comparison rows, panel order.
    pub rows: Vec<OpFleetRow>,
}

/// Fraction of `shares` mass on 5G technologies.
fn share_5g(shares: &[(Technology, f64)]) -> f64 {
    shares
        .iter()
        .filter(|(t, _)| t.is_5g())
        .map(|&(_, s)| s)
        .sum()
}

/// Compute the section. `fleet` is the campaign's merged ground truth;
/// `None` (a fleetless run) yields an empty section that renders a
/// pointer at the `--population` flag.
pub fn compute(ix: &AnalysisIndex<'_>, fleet: Option<&FleetSummary>) -> ProbeVsFleet {
    let Some(fleet) = fleet else {
        return ProbeVsFleet {
            population: 0,
            rows: Vec::new(),
        };
    };
    let rows = fleet
        .per_op
        .iter()
        .map(|(op, sketch)| {
            let total_hours = sketch.sub_hours();
            let fleet_5g: f64 = Technology::ALL
                .iter()
                .enumerate()
                .filter(|(_, t)| t.is_5g())
                .map(|(i, _)| sketch.tech_sub_hours(i))
                .sum();
            OpFleetRow {
                op: *op,
                probe_dl_median_mbps: ix.tput_ecdf(*op, Direction::Downlink, false).median(),
                probe_5g_share: share_5g(&ix.shares(*op).active_all),
                fleet_5g_share: if total_hours > 0.0 {
                    fleet_5g / total_hours
                } else {
                    0.0
                },
                fleet_sub_hours: total_hours,
                load_quantiles: [
                    sketch.hist.quantile(0.10),
                    sketch.hist.quantile(0.50),
                    sketch.hist.quantile(0.90),
                ],
            }
        })
        .collect();
    ProbeVsFleet {
        population: fleet.population,
        rows,
    }
}

impl ProbeVsFleet {
    /// Operators ranked best-first by probe median DL throughput.
    pub fn probe_ranking(&self) -> Vec<Operator> {
        let mut v: Vec<&OpFleetRow> = self.rows.iter().collect();
        v.sort_by(|a, b| b.probe_dl_median_mbps.total_cmp(&a.probe_dl_median_mbps));
        v.into_iter().map(|r| r.op).collect()
    }

    /// Operators ranked best-first by fleet ground truth: lowest median
    /// cell load carries its subscribers with the most headroom.
    pub fn fleet_ranking(&self) -> Vec<Operator> {
        let mut v: Vec<&OpFleetRow> = self.rows.iter().collect();
        v.sort_by(|a, b| a.load_quantiles[1].total_cmp(&b.load_quantiles[1]));
        v.into_iter().map(|r| r.op).collect()
    }

    /// Fraction of operator pairs the probe ranking orders the same way
    /// as the fleet ranking (1.0 = identical order).
    pub fn ranking_coverage(&self) -> f64 {
        let probe = self.probe_ranking();
        let fleet = self.fleet_ranking();
        let n = probe.len();
        if n < 2 {
            return 1.0;
        }
        let pos = |ranking: &[Operator], op: Operator| {
            ranking.iter().position(|&o| o == op).expect("op ranked")
        };
        let mut concordant = 0usize;
        let mut pairs = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                pairs += 1;
                let (a, b) = (probe[i], probe[j]);
                if pos(&fleet, a) < pos(&fleet, b) {
                    concordant += 1;
                }
            }
        }
        concordant as f64 / pairs as f64
    }

    /// Render the extension section.
    pub fn render(&self) -> String {
        let title = format!(
            "Extension — probe panel vs subscriber fleet (population {})",
            self.population
        );
        let mut out = format!("{title}\n{}\n", "-".repeat(title.len().min(100)));
        if self.rows.is_empty() {
            out.push_str("  campaign ran without a subscriber fleet (rerun with --population N)\n");
            return out;
        }
        out.push_str(
            "  op           probe p50 DL   probe 5G   fleet 5G   sub-hours   load p10/p50/p90\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<12} {:>9.2} Mbps   {:>7}   {:>7}   {:>9.0}   {:.2}/{:.2}/{:.2}\n",
                r.op.to_string(),
                r.probe_dl_median_mbps,
                pct(r.probe_5g_share),
                pct(r.fleet_5g_share),
                r.fleet_sub_hours,
                r.load_quantiles[0],
                r.load_quantiles[1],
                r.load_quantiles[2],
            ));
        }
        let fmt_ranking = |ops: Vec<Operator>| {
            ops.iter()
                .map(|o| o.to_string())
                .collect::<Vec<_>>()
                .join(" > ")
        };
        out.push_str(&format!(
            "  probe ranking (p50 DL):    {}\n",
            fmt_ranking(self.probe_ranking())
        ));
        out.push_str(&format!(
            "  fleet ranking (least load): {}\n",
            fmt_ranking(self.fleet_ranking())
        ));
        out.push_str(&format!(
            "  ranking coverage: {} of operator pairs ordered consistently\n",
            pct(self.ranking_coverage())
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix;
    use wheels_campaign::FleetUnitSketch;
    use wheels_fleet::CellHourObs;

    fn sketch(util: f64, tech: u8) -> FleetUnitSketch {
        let mut s = FleetUnitSketch::empty();
        s.observe(&CellHourObs {
            cell: 1,
            tech,
            hour_of_day: 12,
            subs: 100,
            active_micro: 100_000_000,
            util,
            span_micro: 1_000_000,
        });
        s
    }

    fn summary(utils: [f64; 3]) -> FleetSummary {
        FleetSummary {
            population: 30_000,
            per_op: Operator::ALL
                .iter()
                .zip(utils)
                .map(|(&op, u)| (op, sketch(u, 3)))
                .collect(),
        }
    }

    #[test]
    fn fleetless_run_renders_pointer() {
        let f = compute(network_ix(), None);
        assert_eq!(f.population, 0);
        assert!(f.render().contains("--population"));
    }

    #[test]
    fn fleet_shares_and_quantiles_come_from_the_sketch() {
        let f = compute(network_ix(), Some(&summary([0.2, 0.5, 0.9])));
        assert_eq!(f.population, 30_000);
        assert_eq!(f.rows.len(), 3);
        for r in &f.rows {
            // All mass on tech slot 3 (Nr5gMid) → 5G share is 1.
            assert!((r.fleet_5g_share - 1.0).abs() < 1e-9);
            assert!(r.fleet_sub_hours > 0.0);
            assert!(r.load_quantiles[0] <= r.load_quantiles[2]);
        }
        // Fleet ranking orders by median load: the 0.2-util operator wins.
        assert_eq!(f.fleet_ranking()[0], Operator::ALL[0]);
        let cov = f.ranking_coverage();
        assert!((0.0..=1.0).contains(&cov));
    }

    #[test]
    fn render_lists_every_operator() {
        let text = compute(network_ix(), Some(&summary([0.3, 0.4, 0.5]))).render();
        for op in Operator::ALL {
            assert!(text.contains(&op.to_string()), "{op} missing from:\n{text}");
        }
        assert!(text.contains("ranking coverage"));
    }
}
